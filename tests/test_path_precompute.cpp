// Sharded path precomputation: deterministic chunking, table contents
// identical to lazy per-pair computation, and byte-identical results at
// any thread count (the DESIGN.md §7 contract extended to setup work).
// Also covers the PathTable container and its consumers (PacketSimulator
// cfg.paths, PathCache::warm) plus the topology-name 'k' suffix fix.

#include <gtest/gtest.h>

#include "exp/path_precompute.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "graph/csr.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"
#include "schemes/path_cache.hpp"
#include "sim/packet_sim.hpp"
#include "workload/workload.hpp"

namespace {

using namespace spider;
using graph::CsrGraph;
using graph::Graph;
using graph::NodeId;
using graph::Path;
using graph::PathTable;

std::vector<PathTable::Pair> cross_pairs(NodeId n, NodeId stride) {
  std::vector<PathTable::Pair> pairs;
  for (NodeId s = 0; s < n; s += stride) {
    for (NodeId t = 0; t < n; t += stride) {
      if (s != t) pairs.emplace_back(s, t);
    }
  }
  return pairs;
}

TEST(PathPrecomputePlan, ChunksPartitionThePairList) {
  auto plan = exp::PathPrecomputePlan::make(cross_pairs(32, 4), 10, 7);
  ASSERT_FALSE(plan.pairs.empty());
  ASSERT_FALSE(plan.chunks.empty());
  EXPECT_EQ(plan.chunk_size, 10u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    const exp::PrecomputeChunk& c = plan.chunks[i];
    EXPECT_EQ(c.begin, covered);
    EXPECT_GT(c.end, c.begin);
    EXPECT_LE(c.end - c.begin, 10u);
    EXPECT_EQ(c.seed, exp::derive_seed(7, i));  // per-chunk derived stream
    covered = c.end;
  }
  EXPECT_EQ(covered, plan.pairs.size());
}

TEST(PathPrecomputePlan, CanonicalisesPairOrder) {
  std::vector<PathTable::Pair> shuffled = {{5, 1}, {0, 3}, {5, 1}, {2, 4}};
  auto plan = exp::PathPrecomputePlan::make(shuffled, 2, 1);
  const std::vector<PathTable::Pair> want = {{0, 3}, {2, 4}, {5, 1}};
  EXPECT_EQ(plan.pairs, want);  // sorted, deduplicated
}

TEST(PathPrecomputePlan, DefaultChunkSizeNonZero) {
  auto plan = exp::PathPrecomputePlan::make(cross_pairs(8, 2), 0, 1);
  EXPECT_GT(plan.chunk_size, 0u);
  ASSERT_EQ(plan.chunks.size(), 1u);  // few pairs fit one default chunk
  EXPECT_EQ(plan.chunks[0].end, plan.pairs.size());
}

TEST(PrecomputePaths, MatchesLazyEdgeDisjoint) {
  const Graph g = graph::topology::make_isp32();
  const CsrGraph csr(g);
  auto plan = exp::PathPrecomputePlan::make(cross_pairs(32, 3), 5, 1);
  const exp::Runner runner(2);
  const PathTable table = exp::precompute_paths(csr, plan, 4, runner);
  EXPECT_EQ(table.pair_count(), plan.pairs.size());
  for (const auto& [s, t] : plan.pairs) {
    const auto got = table.find(s, t);
    const auto want = graph::edge_disjoint_shortest_paths(g, s, t, 4);
    ASSERT_EQ(got.size(), want.size()) << s << "->" << t;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << s << "->" << t << " path " << i;
    }
  }
}

TEST(PrecomputePaths, YenKindMatchesLazyYen) {
  const Graph g = graph::topology::make_isp32();
  const CsrGraph csr(g);
  auto plan = exp::PathPrecomputePlan::make({{0, 20}, {5, 9}}, 1, 1);
  const exp::Runner runner(1);
  const PathTable table =
      exp::precompute_paths(csr, plan, 3, runner, exp::PathKind::kYen);
  for (const auto& [s, t] : plan.pairs) {
    const auto got = table.find(s, t);
    const auto want = graph::yen_k_shortest_paths(g, s, t, 3);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
}

TEST(PrecomputePaths, ByteIdenticalAtAnyThreadCount) {
  const Graph g = graph::topology::make_ripple_like(200, 13);
  const CsrGraph csr(g);
  auto plan = exp::PathPrecomputePlan::make(cross_pairs(200, 17), 8, 3);
  const PathTable serial =
      exp::precompute_paths(csr, plan, 4, exp::Runner(1));
  const std::uint64_t want = serial.checksum();
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const PathTable parallel =
        exp::precompute_paths(csr, plan, 4, exp::Runner(threads));
    EXPECT_EQ(parallel.checksum(), want) << threads << " threads";
    ASSERT_EQ(parallel.pair_count(), serial.pair_count());
    ASSERT_EQ(parallel.path_count(), serial.path_count());
    for (const auto& [s, t] : plan.pairs) {
      const auto a = serial.find(s, t);
      const auto b = parallel.find(s, t);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(PathTable, MissingPairYieldsEmptyAndNoCoverage) {
  const PathTable empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.find(0, 1).empty());
  EXPECT_FALSE(empty.has_pair(0, 1));

  const Graph g = graph::topology::make_fig4_example();
  auto plan = exp::PathPrecomputePlan::make({{0, 4}}, 1, 1);
  const PathTable table =
      exp::precompute_paths(CsrGraph(g), plan, 4, exp::Runner(1));
  EXPECT_TRUE(table.has_pair(0, 4));
  EXPECT_FALSE(table.find(0, 4).empty());
  EXPECT_FALSE(table.has_pair(1, 2));  // computable but not covered
  EXPECT_TRUE(table.find(1, 2).empty());
}

TEST(PathTable, CoveredDisconnectedPairIsEmptyButPresent) {
  Graph g(3);
  g.add_edge(0, 1);  // node 2 is isolated
  auto plan = exp::PathPrecomputePlan::make({{0, 1}, {0, 2}}, 4, 1);
  const PathTable table =
      exp::precompute_paths(CsrGraph(g), plan, 4, exp::Runner(1));
  EXPECT_TRUE(table.has_pair(0, 2));
  EXPECT_TRUE(table.find(0, 2).empty());
  EXPECT_EQ(table.find(0, 1).size(), 1u);
}

TEST(PacketSim, PrecomputedTableIsByteIdenticalToLazy) {
  const Graph g = graph::topology::make_isp32();
  const workload::WorkloadConfig wc = workload::isp_workload(400, 30.0, 99);
  const workload::Trace trace = workload::generate_trace(g, wc);

  std::vector<PathTable::Pair> pairs;
  for (const workload::Transaction& tx : trace) pairs.emplace_back(tx.src, tx.dst);
  auto plan = exp::PathPrecomputePlan::make(std::move(pairs), 16, 1);
  const PathTable table =
      exp::precompute_paths(CsrGraph(g), plan, 4, exp::Runner(2));

  auto run = [&](const PathTable* warm) {
    sim::PacketSimConfig cfg;
    cfg.end_time = 30.0;
    cfg.seed = 99;
    cfg.paths = warm;
    sim::PacketSimulator ps(
        g, std::vector<core::Amount>(g.edge_count(), core::from_units(500.0)),
        cfg);
    for (const workload::Transaction& tx : trace) {
      core::PaymentRequest req;
      req.src = tx.src;
      req.dst = tx.dst;
      req.amount = tx.amount;
      req.arrival = tx.arrival;
      ps.submit(req);
    }
    return ps.run();
  };
  const sim::Metrics lazy = run(nullptr);
  const sim::Metrics warmed = run(&table);
  EXPECT_EQ(exp::report::metrics_to_json(lazy).dump(),
            exp::report::metrics_to_json(warmed).dump());
  EXPECT_GT(lazy.succeeded, 0u);
}

TEST(PathCacheWarm, WarmedPairsMatchLazyComputation) {
  const Graph g = graph::topology::make_isp32();
  auto plan = exp::PathPrecomputePlan::make(cross_pairs(32, 5), 4, 1);
  const PathTable table =
      exp::precompute_paths(CsrGraph(g), plan, 4, exp::Runner(2));

  schemes::PathCache cold(&g, schemes::PathMode::kEdgeDisjoint, 4);
  schemes::PathCache warm(&g, schemes::PathMode::kEdgeDisjoint, 4);
  warm.warm(table);
  EXPECT_EQ(warm.cached_pairs(), table.pair_count());
  for (const auto& [s, t] : plan.pairs) {
    EXPECT_EQ(warm.paths(s, t), cold.paths(s, t)) << s << "->" << t;
  }
  // Uncovered pairs still compute lazily after warming.
  EXPECT_EQ(warm.paths(1, 2), cold.paths(1, 2));
}

TEST(NamedTopology, KSuffixMultipliesByThousand) {
  // "lightning-1k" must be 1000 nodes -- std::stoull used to silently
  // parse "1k" as 1 and build a graph 1000x too small.
  const Graph g = exp::make_named_topology("lightning-1k");
  EXPECT_EQ(g.node_count(), 1000u);
  const Graph r = exp::make_named_topology("ripple-3774");
  EXPECT_EQ(r.node_count(), 3774u);
}

TEST(NamedTopology, RejectsMalformedSizeSuffixes) {
  EXPECT_THROW((void)exp::make_named_topology("ripple-"),
               std::invalid_argument);
  EXPECT_THROW((void)exp::make_named_topology("ripple-12x"),
               std::invalid_argument);
  EXPECT_THROW((void)exp::make_named_topology("ripple-k"),
               std::invalid_argument);
  EXPECT_THROW((void)exp::make_named_topology("ripple-1k2"),
               std::invalid_argument);
}

}  // namespace
