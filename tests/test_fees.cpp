#include "core/fees.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "schemes/schemes.hpp"
#include "sim/flow_sim.hpp"

namespace spider {
namespace {

using core::Amount;
using core::FeePolicy;
using core::from_units;

TEST(Fees, FlatAndProportionalSchedule) {
  FeePolicy p;
  p.base = 10;                 // 0.01 units per hop
  p.proportional_ppm = 1000;   // 0.1%
  EXPECT_EQ(p.fee_for(from_units(100)), 10 + 100);  // 10 + 0.1% of 100k
  EXPECT_FALSE(p.free());
  EXPECT_TRUE(FeePolicy{}.free());
}

TEST(Fees, HopAmountsGrowTowardsSender) {
  FeePolicy p;
  p.base = 5;
  const auto amounts = core::hop_amounts(p, 1000, 3);
  ASSERT_EQ(amounts.size(), 3u);
  EXPECT_EQ(amounts[2], 1000);      // final hop delivers exactly
  EXPECT_EQ(amounts[1], 1005);      // +1 router fee
  EXPECT_EQ(amounts[0], 1010);      // +2 router fees
  EXPECT_EQ(core::total_fee(p, 1000, 3), 10);
  // Single hop: no forwarding router, no fee.
  EXPECT_EQ(core::total_fee(p, 1000, 1), 0);
}

TEST(Fees, ProportionalCompoundsPerHop) {
  FeePolicy p;
  p.proportional_ppm = 10000;  // 1%
  const auto amounts = core::hop_amounts(p, 100000, 3);
  EXPECT_EQ(amounts[2], 100000);
  EXPECT_EQ(amounts[1], 101000);
  EXPECT_EQ(amounts[0], 101000 + 1010);
}

TEST(Fees, BadArgsThrow) {
  EXPECT_THROW((void)core::hop_amounts(FeePolicy{}, 100, 0),
               std::invalid_argument);
  EXPECT_THROW((void)core::hop_amounts(FeePolicy{}, 0, 2),
               std::invalid_argument);
}

TEST(Fees, RouteLockWithFeesPaysIntermediaries) {
  const graph::Graph g = graph::topology::make_line(3);
  core::ChannelNetwork net(g, std::vector<Amount>{2000, 2000});
  FeePolicy p;
  p.base = 50;
  const auto amounts = core::hop_amounts(p, 500, 2);  // {550, 500}
  const core::Preimage key = 9;
  const auto rl = net.lock_route_with_fees(
      graph::Path{0, {graph::forward_arc(0), graph::forward_arc(1)}},
      amounts, core::hash_preimage(key));
  ASSERT_TRUE(rl.has_value());
  EXPECT_EQ(rl->amount, 500);  // delivered value
  ASSERT_TRUE(net.settle_route(*rl, key));
  // Sender paid 550; the middle node received 550 and forwarded 500,
  // keeping a 50 fee; the receiver got 500.
  EXPECT_EQ(net.available(graph::forward_arc(0)), 1000 - 550);
  EXPECT_EQ(net.available(graph::backward_arc(0)), 1000 + 550);
  EXPECT_EQ(net.available(graph::forward_arc(1)), 1000 - 500);
  EXPECT_EQ(net.available(graph::backward_arc(1)), 1000 + 500);
  EXPECT_TRUE(net.conserves_funds());
}

TEST(Fees, IncreasingAmountsRejected) {
  const graph::Graph g = graph::topology::make_line(3);
  core::ChannelNetwork net(g, std::vector<Amount>{2000, 2000});
  const std::vector<Amount> rising{100, 200};
  EXPECT_FALSE(net
                   .lock_route_with_fees(
                       graph::Path{0, {graph::forward_arc(0),
                                       graph::forward_arc(1)}},
                       rising, 1)
                   .has_value());
}

TEST(Fees, FlowSimCollectsFeesAndConserves) {
  const graph::Graph g = graph::topology::make_line(3);
  schemes::ShortestPathScheme scheme;
  sim::FlowSimConfig cfg;
  cfg.end_time = 10;
  cfg.fee_policy.base = from_units(1);  // 1 unit per forwarded hop
  sim::FlowSimulator fs(g, std::vector<Amount>(2, from_units(200)), scheme,
                        cfg);
  core::PaymentRequest req;
  req.src = 0;
  req.dst = 2;
  req.amount = from_units(50);
  req.arrival = 1.0;
  fs.add_payment(req);
  const sim::Metrics m = fs.run(fluid::PaymentGraph(3));
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_EQ(m.fees_paid, from_units(1));  // one forwarding router
  EXPECT_TRUE(fs.network().conserves_funds());
  // The middle node (node 1) netted exactly the fee across its channels.
  const Amount node1_gain =
      fs.network().available(graph::backward_arc(0)) - from_units(100) +
      fs.network().available(graph::forward_arc(1)) - from_units(100);
  EXPECT_EQ(node1_gain, from_units(1));
}

TEST(Fees, MaxFeeBudgetBlocksExpensivePaths) {
  const graph::Graph g = graph::topology::make_line(3);
  schemes::ShortestPathScheme scheme;
  sim::FlowSimConfig cfg;
  cfg.end_time = 10;
  cfg.fee_policy.base = from_units(5);
  sim::FlowSimulator fs(g, std::vector<Amount>(2, from_units(200)), scheme,
                        cfg);
  core::PaymentRequest req;
  req.src = 0;
  req.dst = 2;
  req.amount = from_units(50);
  req.arrival = 1.0;
  req.max_fee = from_units(1);  // cheaper than the 5-unit hop fee
  fs.add_payment(req);
  const sim::Metrics m = fs.run(fluid::PaymentGraph(3));
  EXPECT_EQ(m.succeeded, 0u);
  EXPECT_EQ(m.fees_paid, 0);
  EXPECT_EQ(m.delivered_volume, 0);
}

TEST(Fees, SingleHopPaymentsAreFree) {
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  sim::FlowSimConfig cfg;
  cfg.end_time = 10;
  cfg.fee_policy.base = from_units(5);
  sim::FlowSimulator fs(g, std::vector<Amount>{from_units(200)}, scheme,
                        cfg);
  core::PaymentRequest req;
  req.src = 0;
  req.dst = 1;
  req.amount = from_units(50);
  req.arrival = 1.0;
  req.max_fee = 0;  // direct channel: no forwarding router, no fee
  fs.add_payment(req);
  const sim::Metrics m = fs.run(fluid::PaymentGraph(2));
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_EQ(m.fees_paid, 0);
}

}  // namespace
}  // namespace spider
