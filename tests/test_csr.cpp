// CsrGraph freeze correctness: the frozen arena view must agree with
// the adjacency-list Graph on every accessor and preserve neighbour
// order exactly (the byte-identity foundation for every differential
// test downstream), and PathFinder over CSR must reproduce the legacy
// free functions arc-for-arc.

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"

namespace {

using namespace spider;
using graph::ArcId;
using graph::CsrGraph;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using graph::Path;

void expect_same_view(const Graph& g, const CsrGraph& c) {
  ASSERT_EQ(g.node_count(), c.node_count());
  ASSERT_EQ(g.edge_count(), c.edge_count());
  ASSERT_EQ(g.arc_count(), c.arc_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(g.degree(u), c.degree(u));
    const auto ga = g.out_arcs(u);
    const auto ca = c.out_arcs(u);
    ASSERT_EQ(ga.size(), ca.size()) << "node " << u;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i], ca[i]) << "node " << u << " slot " << i;
    }
  }
  for (ArcId a = 0; a < g.arc_count(); ++a) {
    EXPECT_EQ(g.head(a), c.head(a));
    EXPECT_EQ(g.tail(a), c.tail(a));
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(g.edge_u(e), c.edge_u(e));
    EXPECT_EQ(g.edge_v(e), c.edge_v(e));
  }
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph c{Graph{}};
  EXPECT_EQ(c.node_count(), 0u);
  EXPECT_EQ(c.edge_count(), 0u);
  EXPECT_EQ(c.arc_count(), 0u);
  EXPECT_GT(c.memory_bytes(), 0u);  // the offsets sentinel
}

TEST(CsrGraph, IsolatedNodes) {
  const CsrGraph c{Graph{4}};
  EXPECT_EQ(c.node_count(), 4u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(c.degree(u), 0u);
    EXPECT_TRUE(c.out_arcs(u).empty());
  }
}

TEST(CsrGraph, MatchesGraphAccessors) {
  expect_same_view(graph::topology::make_fig4_example(),
                   CsrGraph{graph::topology::make_fig4_example()});
  const Graph isp = graph::topology::make_isp32();
  expect_same_view(isp, CsrGraph{isp});
  const Graph ripple = graph::topology::make_ripple_like(200, 13);
  expect_same_view(ripple, CsrGraph{ripple});
}

TEST(CsrGraph, ParallelEdgesPreserved) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const CsrGraph c(g);
  expect_same_view(g, c);
  EXPECT_EQ(c.degree(0), 2u);
  // find_edge returns the first incident match, like Graph.
  EXPECT_EQ(c.find_edge(0, 1), g.find_edge(0, 1));
  EXPECT_TRUE(c.has_edge(0, 1));
  EXPECT_TRUE(c.has_edge(1, 0));
}

TEST(CsrGraph, FindEdgeMisses) {
  Graph g(3);
  g.add_edge(0, 1);
  const CsrGraph c(g);
  EXPECT_EQ(c.find_edge(0, 2), graph::kInvalidEdge);
  EXPECT_FALSE(c.has_edge(1, 2));
}

TEST(CsrGraph, ChecksumFingerprintsTopology) {
  const Graph isp = graph::topology::make_isp32();
  const CsrGraph a(isp);
  const CsrGraph b(isp);
  EXPECT_EQ(a.checksum(), b.checksum());  // same graph, same arena
  const CsrGraph other(graph::topology::make_ripple_like(100, 13));
  EXPECT_NE(a.checksum(), other.checksum());
}

TEST(CsrGraph, MoveKeepsViewValid) {
  const Graph isp = graph::topology::make_isp32();
  CsrGraph a(isp);
  const CsrGraph b = std::move(a);
  expect_same_view(isp, b);  // index-based bases survive the move
}

TEST(CsrGraph, PathHelpersWork) {
  const Graph g = graph::topology::make_fig4_example();
  const CsrGraph c(g);
  const auto p = graph::bfs_shortest_path(c, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->destination(c), 3u);
  EXPECT_EQ(p->nodes(c), p->nodes(g));
  EXPECT_EQ(graph::to_string(*p, c), graph::to_string(*p, g));
}

// ---- PathFinder differentials: CSR vs legacy adjacency-list runs ----

class PathFinderDifferential : public ::testing::Test {
 protected:
  void check_pair(const Graph& g, const CsrGraph& c, graph::PathFinder& f,
                  NodeId s, NodeId t) {
    const graph::ArcWeightFn unit_w = [](ArcId) { return 1.0; };
    const graph::ArcWeightFn var_w = [](ArcId a) {
      return 1.0 + static_cast<double>(graph::edge_of(a) % 5);
    };
    const graph::ArcWeightFn cap = [](ArcId a) {
      return 10.0 + static_cast<double>((a * 7) % 13);
    };
    EXPECT_EQ(graph::bfs_shortest_path(g, s, t), f.bfs_shortest(c, s, t));
    EXPECT_EQ(graph::dijkstra_shortest_path(g, s, t, var_w),
              f.dijkstra(c, s, t, var_w));
    EXPECT_EQ(graph::yen_k_shortest_paths(g, s, t, 4, unit_w),
              f.yen(c, s, t, 4, unit_w));
    EXPECT_EQ(graph::edge_disjoint_shortest_paths(g, s, t, 4),
              f.edge_disjoint(c, s, t, 4));
    EXPECT_EQ(graph::widest_path(g, s, t, cap), f.widest(c, s, t, cap));
    EXPECT_EQ(graph::edge_disjoint_widest_paths(g, s, t, 3, cap),
              f.edge_disjoint_widest(c, s, t, 3, cap));
  }
};

TEST_F(PathFinderDifferential, MatchesLegacyOnIsp32) {
  const Graph g = graph::topology::make_isp32();
  const CsrGraph c(g);
  graph::PathFinder f;  // one finder, scratch reused across every query
  for (const auto [s, t] : {std::pair<NodeId, NodeId>{0, 31},
                            {8, 20},
                            {3, 3},
                            {15, 2},
                            {31, 0}}) {
    check_pair(g, c, f, s, t);
  }
}

TEST_F(PathFinderDifferential, MatchesLegacyOnRipple) {
  const Graph g = graph::topology::make_ripple_like(300, 13);
  const CsrGraph c(g);
  graph::PathFinder f;
  for (const auto [s, t] : {std::pair<NodeId, NodeId>{0, 299},
                            {250, 10},
                            {42, 43},
                            {299, 1}}) {
    check_pair(g, c, f, s, t);
  }
}

TEST_F(PathFinderDifferential, ScratchSurvivesGraphSwitches) {
  // The same finder must answer correctly when hopping between graphs
  // of different sizes (buffers grow, stamps invalidate stale marks).
  const Graph small = graph::topology::make_fig4_example();
  const Graph big = graph::topology::make_ripple_like(400, 13);
  const CsrGraph cs(small), cb(big);
  graph::PathFinder f;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(graph::bfs_shortest_path(small, 0, 4), f.bfs_shortest(cs, 0, 4));
    EXPECT_EQ(graph::edge_disjoint_shortest_paths(big, 0, 399, 4),
              f.edge_disjoint(cb, 0, 399, 4));
    EXPECT_EQ(graph::yen_k_shortest_paths(small, 0, 3, 3),
              f.yen(cs, 0, 3, 3));
  }
}

TEST_F(PathFinderDifferential, BlockedEdgesRespected) {
  const Graph g = graph::topology::make_fig4_example();
  const CsrGraph c(g);
  graph::PathFinder f;
  std::vector<char> blocked(g.edge_count(), 0);
  blocked[0] = 1;  // cut 0-1: node 0 is isolated
  EXPECT_EQ(graph::bfs_shortest_path(g, 0, 4, blocked),
            f.bfs_shortest(c, 0, 4, blocked));
  EXPECT_FALSE(f.bfs_shortest(c, 0, 4, blocked).has_value());
}

TEST_F(PathFinderDifferential, CsrFreeFunctionOverloads) {
  const Graph g = graph::topology::make_isp32();
  const CsrGraph c(g);
  EXPECT_EQ(graph::bfs_shortest_path(g, 0, 20), graph::bfs_shortest_path(c, 0, 20));
  EXPECT_EQ(graph::edge_disjoint_shortest_paths(g, 0, 20, 4),
            graph::edge_disjoint_shortest_paths(c, 0, 20, 4));
  const graph::ArcWeightFn w = [](ArcId a) { return 1.0 + (a % 3); };
  EXPECT_EQ(graph::dijkstra_shortest_path(g, 0, 20, w),
            graph::dijkstra_shortest_path(c, 0, 20, w));
  EXPECT_EQ(graph::yen_k_shortest_paths(g, 0, 20, 3, w),
            graph::yen_k_shortest_paths(c, 0, 20, 3, w));
  EXPECT_EQ(graph::widest_path(g, 0, 20, w), graph::widest_path(c, 0, 20, w));
  EXPECT_EQ(graph::edge_disjoint_widest_paths(g, 0, 20, 3, w),
            graph::edge_disjoint_widest_paths(c, 0, 20, 3, w));
}

TEST_F(PathFinderDifferential, DijkstraNegativeWeightThrows) {
  const CsrGraph c(graph::topology::make_fig4_example());
  graph::PathFinder f;
  const graph::ArcWeightFn bad = [](ArcId) { return -1.0; };
  EXPECT_THROW((void)f.dijkstra(c, 0, 4, bad), std::invalid_argument);
}

TEST(GraphReserve, BulkBuildMatchesIncremental) {
  Graph a(100);
  Graph b(100);
  b.reserve(100, 99);
  for (NodeId i = 0; i + 1 < 100; ++i) {
    a.add_edge(i, i + 1);
    b.add_edge(i, i + 1);
  }
  EXPECT_EQ(CsrGraph(a).checksum(), CsrGraph(b).checksum());
  EXPECT_EQ(b.edge_count(), 99u);
}

}  // namespace
