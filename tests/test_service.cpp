// Tests of the long-running service mode (DESIGN.md §13): the pull-
// based stream generators (src/workload/stream.*), the streaming
// driver's windowed metrics export, payment retirement, and the
// replay-based snapshot/restore identity -- split at multiple points,
// across shard counts {0, 2}, and under active fault schedules.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "graph/topology.hpp"
#include "sim/packet_sim.hpp"
#include "workload/stream.hpp"

namespace spider {
namespace {

using service::Service;
using service::ServiceConfig;
using service::WindowRecord;
using workload::StreamConfig;
using workload::StreamKind;

// ---------------------------------------------------------------------
// Stream generators.
// ---------------------------------------------------------------------

TEST(StreamSpec, ParsesAndRoundTrips) {
  const char* specs[] = {
      "steady;rate=20;mean=170;max=1780;sigma=1;skew=4;sender=exp;seed=1",
      "diurnal;rate=5;amp=0.25;period=120;seed=7",
      "flash;rate=3;boost=6;every=200;blen=12;sender=uni;seed=9",
      "trace;path=/tmp/some_trace.csv",
  };
  for (const char* s : specs) {
    const StreamConfig cfg = workload::parse_stream_spec(s);
    const std::string canon = workload::to_string(cfg);
    const StreamConfig back = workload::parse_stream_spec(canon);
    EXPECT_EQ(workload::to_string(back), canon) << s;
  }
  EXPECT_EQ(workload::parse_stream_spec("diurnal;amp=0.3").kind,
            StreamKind::kDiurnal);
}

TEST(StreamSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)workload::parse_stream_spec("tsunami;rate=1"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::parse_stream_spec("steady;bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)workload::parse_stream_spec("steady;rate=abc"),
               std::invalid_argument);
  const graph::Graph g = graph::topology::make_ring(8);
  EXPECT_THROW((void)workload::make_stream("steady;rate=0", g),
               std::invalid_argument);
  EXPECT_THROW((void)workload::make_stream("diurnal;amp=1.5", g),
               std::invalid_argument);
  EXPECT_THROW((void)workload::make_stream("flash;boost=0.5", g),
               std::invalid_argument);
  EXPECT_THROW((void)workload::make_stream("trace", g),
               std::invalid_argument);
}

TEST(StreamGenerator, SameSpecIsByteIdentical) {
  const graph::Graph g = graph::topology::make_ring(10);
  for (const char* spec :
       {"steady;rate=50;seed=3", "diurnal;rate=50;amp=0.6;period=30;seed=3",
        "flash;rate=50;boost=5;every=20;blen=4;seed=3"}) {
    auto a = workload::make_stream(spec, g);
    auto b = workload::make_stream(spec, g);
    for (int i = 0; i < 500; ++i) {
      const auto ta = a->next();
      const auto tb = b->next();
      ASSERT_TRUE(ta.has_value() && tb.has_value());
      EXPECT_EQ(*ta, *tb) << spec << " txn " << i;
    }
    EXPECT_EQ(a->emitted(), 500u);
  }
}

TEST(StreamGenerator, SkipMatchesDrawForDraw) {
  const graph::Graph g = graph::topology::make_ring(10);
  for (const char* spec :
       {"steady;rate=40;seed=5", "diurnal;rate=40;amp=0.3;period=50;seed=5",
        "flash;rate=40;boost=4;every=30;blen=5;seed=5"}) {
    auto a = workload::make_stream(spec, g);
    auto b = workload::make_stream(spec, g);
    for (int i = 0; i < 137; ++i) (void)a->next();
    b->skip(137);
    EXPECT_EQ(b->emitted(), 137u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(*a->next(), *b->next()) << spec << " txn " << i;
    }
  }
}

TEST(StreamGenerator, EmitsValidNonDecreasingTransactions) {
  const graph::Graph g = graph::topology::make_scale_free(16, 3, 13);
  for (const char* spec :
       {"steady;rate=30;seed=2", "diurnal;rate=30;amp=0.8;period=40;seed=2",
        "flash;rate=30;boost=10;every=25;blen=5;seed=2"}) {
    auto s = workload::make_stream(spec, g);
    double prev = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const auto tx = s->next();
      ASSERT_TRUE(tx.has_value());
      EXPECT_GE(tx->arrival, prev) << spec;
      prev = tx->arrival;
      EXPECT_LT(tx->src, g.node_count());
      EXPECT_LT(tx->dst, g.node_count());
      EXPECT_NE(tx->src, tx->dst);
      EXPECT_GT(tx->amount, 0);
    }
  }
}

TEST(StreamGenerator, DiurnalRateTracksThePhase) {
  const graph::Graph g = graph::topology::make_ring(8);
  // Period 100 with amp 0.9: the first half-period runs near 1.9x the
  // base rate, the second near 0.1x. Count arrivals in each.
  auto s = workload::make_stream("diurnal;rate=50;amp=0.9;period=100;seed=4",
                                 g);
  std::size_t peak = 0;
  std::size_t trough = 0;
  while (true) {
    const auto tx = s->next();
    ASSERT_TRUE(tx.has_value());
    if (tx->arrival >= 100.0) break;
    (tx->arrival < 50.0 ? peak : trough) += 1;
  }
  EXPECT_GT(peak, 2 * trough) << "peak " << peak << " trough " << trough;
}

TEST(StreamGenerator, FlashCrowdConcentratesArrivalsInBursts) {
  const graph::Graph g = graph::topology::make_ring(8);
  // boost=20 over blen=5 epochs spaced ~every=50: burst seconds should
  // be far denser than quiet seconds.
  auto s = workload::make_stream(
      "flash;rate=4;boost=20;every=50;blen=5;seed=6", g);
  std::vector<std::size_t> per_second(500, 0);
  while (true) {
    const auto tx = s->next();
    ASSERT_TRUE(tx.has_value());
    if (tx->arrival >= 500.0) break;
    per_second[static_cast<std::size_t>(tx->arrival)] += 1;
  }
  std::size_t max_sec = 0;
  std::size_t total = 0;
  for (const std::size_t c : per_second) {
    max_sec = std::max(max_sec, c);
    total += c;
  }
  const double mean_sec = static_cast<double>(total) / 500.0;
  EXPECT_GT(static_cast<double>(max_sec), 5.0 * mean_sec)
      << "max/sec " << max_sec << " mean/sec " << mean_sec;
}

TEST(StreamGenerator, TraceStreamReplaysTheTraceAndEnds) {
  const graph::Graph g = graph::topology::make_ring(6);
  const std::string path = testing::TempDir() + "stream_trace.csv";
  {
    std::ofstream out(path);
    out << "src,dst,amount,arrival\n";
    out << "0,3," << core::from_units(10) << ",0.5\n";
    out << "1,4," << core::from_units(20) << ",1.5\n";
    out << "2,5," << core::from_units(30) << ",2.5\n";
  }
  auto s = workload::make_stream("trace;path=" + path, g);
  const auto t0 = s->next();
  ASSERT_TRUE(t0.has_value());
  EXPECT_EQ(t0->src, 0u);
  EXPECT_EQ(t0->dst, 3u);
  EXPECT_EQ(t0->arrival, 0.5);
  (void)s->next();
  const auto t2 = s->next();
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->amount, core::from_units(30));
  EXPECT_FALSE(s->next().has_value());  // exhausted
  EXPECT_EQ(s->emitted(), 3u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Service driver: windows, retirement, snapshot/restore.
// ---------------------------------------------------------------------

ServiceConfig small_service(const std::string& workload,
                            const std::string& adversary = "") {
  ServiceConfig cfg;
  cfg.topology = "scalefree-24";
  cfg.capacity_units = 800.0;
  cfg.duration = 90.0;
  cfg.window = 15.0;
  cfg.seed = 21;
  cfg.workload = workload;
  cfg.adversary = adversary;
  return cfg;
}

const char* const kGeneratorSpecs[] = {
    "steady;rate=6;seed=3",
    "diurnal;rate=6;amp=0.7;period=45;seed=3",
    "flash;rate=4;boost=8;every=30;blen=6;seed=3",
};

TEST(Service, WindowDeltasSumToFinalMetrics) {
  Service svc(small_service(kGeneratorSpecs[0]));
  const sim::Metrics& m = svc.finish();
  std::uint64_t attempted = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t partial = 0;
  std::uint64_t failed = 0;
  core::Amount delivered = 0;
  for (const WindowRecord& w : svc.windows()) {
    attempted += w.attempted;
    succeeded += w.succeeded;
    partial += w.partial;
    failed += w.failed;
    delivered += w.delivered;
  }
  EXPECT_EQ(attempted, m.attempted);
  EXPECT_EQ(succeeded, m.succeeded);
  EXPECT_EQ(partial, m.partial);
  EXPECT_EQ(failed, m.failed);
  EXPECT_EQ(delivered, m.delivered_volume);
  EXPECT_EQ(attempted, succeeded + partial + failed);
  EXPECT_EQ(svc.txns_streamed(), m.attempted);
}

TEST(Service, WindowSizeNeverChangesTheOutcome) {
  ServiceConfig a = small_service(kGeneratorSpecs[1]);
  ServiceConfig b = a;
  b.window = 45.0;  // 3x coarser export windows
  Service sa(a);
  Service sb(b);
  EXPECT_EQ(sa.finish(), sb.finish());
  EXPECT_EQ(sa.state_checksum(), sb.state_checksum());
  EXPECT_EQ(sa.windows().size(), 7u);  // 6 boundaries + closing window
  EXPECT_EQ(sb.windows().size(), 3u);
}

TEST(Service, RetirementNeverChangesTheOutcome) {
  ServiceConfig a = small_service(kGeneratorSpecs[0]);
  ServiceConfig b = a;
  b.retire = false;
  Service sa(a);
  Service sb(b);
  EXPECT_EQ(sa.finish(), sb.finish());
  EXPECT_EQ(sa.state_checksum(), sb.state_checksum());
  // Retirement actually freed records on the retiring run.
  EXPECT_LT(sa.live_payments(), sb.live_payments());
}

/// Straight-through reference vs snapshot-at-`split`/restore/continue,
/// optionally restoring at a different shard count.
void expect_split_identity(const ServiceConfig& cfg, double split,
                           int restore_shards = -1) {
  Service straight(cfg);
  const sim::Metrics ref = straight.finish();
  const std::uint64_t ref_checksum = straight.state_checksum();

  Service first(cfg);
  first.run(split);
  const exp::Json snap = exp::Json::parse(first.snapshot().dump());
  std::unique_ptr<Service> second =
      Service::restore(snap, nullptr, restore_shards);
  EXPECT_EQ(second->finish(), ref)
      << "split " << split << " shards " << restore_shards;
  EXPECT_EQ(second->state_checksum(), ref_checksum)
      << "split " << split << " shards " << restore_shards;
  ASSERT_EQ(second->windows().size(), straight.windows().size());
  for (std::size_t i = 0; i < straight.windows().size(); ++i) {
    EXPECT_EQ(second->windows()[i].checksum, straight.windows()[i].checksum)
        << "window " << i;
    EXPECT_EQ(second->windows()[i].attempted, straight.windows()[i].attempted)
        << "window " << i;
  }
}

TEST(ServiceSnapshot, SteadySplitsAreByteIdentical) {
  const ServiceConfig cfg = small_service(kGeneratorSpecs[0]);
  for (const double split : {15.0, 45.0, 80.0}) {
    expect_split_identity(cfg, split);
  }
}

TEST(ServiceSnapshot, DiurnalSplitsAreByteIdentical) {
  const ServiceConfig cfg = small_service(kGeneratorSpecs[1]);
  for (const double split : {22.5, 45.0, 89.0}) {
    expect_split_identity(cfg, split);
  }
}

TEST(ServiceSnapshot, FlashSplitsAreByteIdentical) {
  const ServiceConfig cfg = small_service(kGeneratorSpecs[2]);
  for (const double split : {15.0, 60.0}) {
    expect_split_identity(cfg, split);
  }
}

TEST(ServiceSnapshot, RestoreAcrossShardCountsIsByteIdentical) {
  // Snapshots taken on the serial engine restore under shards=2 (and
  // vice versa): the canonical checksum is layout-independent.
  for (const char* spec : kGeneratorSpecs) {
    ServiceConfig cfg = small_service(spec);
    expect_split_identity(cfg, 45.0, /*restore_shards=*/2);
    cfg.shards = 2;
    expect_split_identity(cfg, 45.0, /*restore_shards=*/0);
  }
}

TEST(ServiceSnapshot, SplitsUnderActiveFaultsAreByteIdentical) {
  const ServiceConfig cfg = small_service(
      kGeneratorSpecs[0],
      "churn=0.05;downtime=4;close=0.01;jam=0.05;jamhold=8;jamfrac=0.5;"
      "grief=0.03;griefhold=5;huboutage=0.02;hubdown=6;seed=17");
  for (const double split : {30.0, 60.0}) {
    expect_split_identity(cfg, split);
    expect_split_identity(cfg, split, /*restore_shards=*/2);
  }
}

TEST(ServiceSnapshot, RestoreRejectsTamperedSnapshots) {
  Service svc(small_service(kGeneratorSpecs[0]));
  svc.run(30.0);
  exp::Json snap = svc.snapshot();
  exp::Json bad_checksum = exp::Json::parse(snap.dump());
  bad_checksum.set("state_checksum", std::int64_t{12345});
  EXPECT_THROW((void)Service::restore(bad_checksum), std::runtime_error);
  exp::Json bad_format = exp::Json::parse(snap.dump());
  bad_format.set("format", "not-a-snapshot");
  EXPECT_THROW((void)Service::restore(bad_format), std::runtime_error);
  exp::Json bad_txns = exp::Json::parse(snap.dump());
  bad_txns.set("txns_streamed", std::uint64_t{999999});
  EXPECT_THROW((void)Service::restore(bad_txns), std::runtime_error);
}

TEST(Service, EmptyStreamRunsToCompletion) {
  const std::string path = testing::TempDir() + "empty_trace.csv";
  {
    std::ofstream out(path);
    out << "src,dst,amount,arrival\n";
  }
  ServiceConfig cfg = small_service("trace;path=" + path);
  Service svc(cfg);
  const sim::Metrics& m = svc.finish();
  EXPECT_EQ(m.attempted, 0u);
  EXPECT_EQ(svc.txns_streamed(), 0u);
  EXPECT_EQ(svc.windows().size(), 7u);  // boundaries still export
  for (const WindowRecord& w : svc.windows()) {
    EXPECT_EQ(w.attempted, 0u);
  }
  std::remove(path.c_str());
}

TEST(Service, ZeroDurationIsRejectedAndSubWindowRunsFinish) {
  // Zero sim time is not a run (the simulator needs end_time > 0)...
  ServiceConfig cfg = small_service(kGeneratorSpecs[0]);
  cfg.duration = 0.0;
  EXPECT_THROW((void)Service(cfg), std::invalid_argument);
  // ...but a duration shorter than one export window is: no boundary is
  // ever crossed and everything lands in the closing window.
  cfg.duration = 7.0;
  Service svc(cfg);
  const sim::Metrics& m = svc.finish();
  ASSERT_EQ(svc.windows().size(), 1u);
  EXPECT_EQ(svc.windows()[0].t0, 0.0);
  EXPECT_EQ(svc.windows()[0].t1, 7.0);
  EXPECT_EQ(svc.windows()[0].attempted, m.attempted);
  EXPECT_EQ(svc.now(), 7.0);
}

TEST(Service, RejectsBadConfiguration) {
  ServiceConfig cfg = small_service(kGeneratorSpecs[0]);
  cfg.scheme = "teleport";
  EXPECT_THROW((void)Service(cfg), std::invalid_argument);
  cfg = small_service(kGeneratorSpecs[0]);
  cfg.window = 0.0;
  EXPECT_THROW((void)Service(cfg), std::invalid_argument);
  cfg = small_service("steady;rate=0");
  EXPECT_THROW((void)Service(cfg), std::invalid_argument);
}

TEST(Service, WindowJsonCarriesTheRecordFields) {
  Service svc(small_service(kGeneratorSpecs[0]));
  svc.run(30.0);
  ASSERT_GE(svc.windows().size(), 1u);
  const exp::Json j = Service::window_to_json(svc.windows()[0]);
  for (const char* key :
       {"window", "t0", "t1", "attempted", "succeeded", "partial", "failed",
        "retired", "delivered", "events", "live", "p50", "p99",
        "events_per_sec", "checksum"}) {
    EXPECT_NE(j.find(key), nullptr) << key;
  }
  EXPECT_EQ(j.at("t1").as_double(), 15.0);
}

TEST(Service, SpiderCcSchemeRunsAndSnapshots) {
  ServiceConfig cfg = small_service(kGeneratorSpecs[0]);
  cfg.scheme = "spider-cc";
  expect_split_identity(cfg, 45.0);
}

// ---------------------------------------------------------------------
// Memory bounds: live payments track the arrival horizon, not the
// stream length (satellite of the full-materialization fix).
// ---------------------------------------------------------------------

TEST(ServiceSoak, PeakLivePaymentsAreBoundedByTheHorizonNotTheStream) {
  // Same saturating stream, 2x and 4x the duration: txns_streamed
  // scales linearly, peak live payments must not (they are bounded by
  // arrivals inside one deadline horizon). SPIDER_FULL=1 scales the
  // long leg to a ~1M-transaction soak.
  const char* full = std::getenv("SPIDER_FULL");
  const bool full_scale = full != nullptr && full[0] == '1';
  ServiceConfig base;
  base.topology = "scalefree-24";
  base.capacity_units = 400.0;
  base.window = 30.0;
  base.seed = 5;
  base.workload = "steady;rate=500;seed=12";
  base.deadline_offset = 10.0;

  ServiceConfig short_cfg = base;
  short_cfg.duration = 60.0;
  Service short_svc(short_cfg);
  (void)short_svc.finish();

  ServiceConfig long_cfg = base;
  long_cfg.duration = full_scale ? 2000.0 : 240.0;  // full: ~1M txns
  Service long_svc(long_cfg);
  (void)long_svc.finish();

  EXPECT_GT(long_svc.txns_streamed(), 3 * short_svc.txns_streamed());
  // Peak live is a property of rate x deadline horizon; allow slack for
  // stochastic variation but forbid anything close to linear growth.
  EXPECT_LT(long_svc.peak_live_payments(),
            2 * short_svc.peak_live_payments() + 1000);
  // Retirement keeps the transport records bounded too.
  EXPECT_LT(long_svc.live_payments(), long_svc.txns_streamed() / 2);
}

// ---------------------------------------------------------------------
// PacketSimulator service API guards + transport retirement.
// ---------------------------------------------------------------------

std::optional<core::PaymentRequest> no_arrivals(void*) {
  return std::nullopt;
}

TEST(PacketSimService, ApiGuards) {
  const graph::Graph g = graph::topology::make_ring(6);
  const std::vector<core::Amount> caps(g.edge_count(), core::from_units(50));
  {
    sim::PacketSimulator sim(g, caps);
    EXPECT_THROW(sim.run_service_until(1.0), std::logic_error);
    EXPECT_THROW((void)sim.retire_resolved(), std::logic_error);
    EXPECT_THROW((void)sim.finish_service(), std::logic_error);
    EXPECT_THROW(sim.start_service(nullptr, nullptr), std::invalid_argument);
  }
  {
    sim::PacketSimulator sim(g, caps);
    core::PaymentRequest req;
    req.src = 0;
    req.dst = 2;
    req.amount = core::from_units(5);
    req.arrival = 1.0;
    (void)sim.submit(req);
    // submit() and service mode are mutually exclusive.
    EXPECT_THROW(sim.start_service(&no_arrivals, nullptr), std::logic_error);
  }
  {
    sim::PacketSimulator sim(g, caps);
    sim.start_service(&no_arrivals, nullptr);
    EXPECT_THROW(sim.start_service(&no_arrivals, nullptr), std::logic_error);
    sim.run_service_until(5.0);
    EXPECT_EQ(sim.now(), 5.0);
    const sim::Metrics& m = sim.finish_service();
    EXPECT_EQ(m.attempted, 0u);
    EXPECT_EQ(&sim.finish_service(), &m);  // idempotent
  }
}

TEST(TransportRetirement, RecyclesSlotsAndForgetsIds) {
  core::Transport tp(0, 42);
  core::PaymentRequest req;
  req.src = 0;
  req.dst = 1;
  req.amount = core::from_units(10);
  req.deadline = 100.0;
  const auto& units = tp.begin_payment(0, req, core::from_units(10));
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(tp.live_payments(), 1u);
  EXPECT_FALSE(tp.resolved(0));
  (void)tp.confirm_unit(core::TxUnitId{0, 0}, 1.0);
  EXPECT_TRUE(tp.resolved(0));
  tp.retire_payment(0);
  EXPECT_EQ(tp.live_payments(), 0u);
  EXPECT_THROW((void)tp.delivered(0), std::invalid_argument);
  EXPECT_THROW(tp.retire_payment(0), std::invalid_argument);
  // The freed slot is recycled by the next payment.
  const auto& units2 = tp.begin_payment(7, req, core::from_units(5));
  EXPECT_EQ(units2.size(), 2u);
  EXPECT_EQ(tp.live_payments(), 1u);
  // Abandonment resolves too, and double-abandon stays single-counted.
  tp.abandon_unit(core::TxUnitId{7, 0});
  tp.abandon_unit(core::TxUnitId{7, 0});
  EXPECT_FALSE(tp.resolved(7));
  tp.abandon_unit(core::TxUnitId{7, 1});
  EXPECT_TRUE(tp.resolved(7));
  EXPECT_EQ(tp.delivered(7), 0);
}

}  // namespace
}  // namespace spider
