#include "sim/flow_sim.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "schemes/schemes.hpp"

namespace spider::sim {
namespace {

using core::Amount;
using core::from_units;

PaymentRequest payment(core::NodeId src, core::NodeId dst, double units,
                       TimePoint arrival) {
  PaymentRequest req;
  req.src = src;
  req.dst = dst;
  req.amount = from_units(units);
  req.arrival = arrival;
  return req;
}

fluid::PaymentGraph no_demand(std::size_t n) { return fluid::PaymentGraph(n); }

TEST(FlowSim, SinglePaymentSucceeds) {
  const graph::Graph g = graph::topology::make_line(3);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 10;
  FlowSimulator sim(g, std::vector<Amount>(g.edge_count(), from_units(100)),
                    scheme, cfg);
  sim.add_payment(payment(0, 2, 10, 1.0));
  const Metrics m = sim.run(no_demand(3));
  EXPECT_EQ(m.attempted, 1u);
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_DOUBLE_EQ(m.success_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(m.success_volume(), 1.0);
  // One in-flight delay of 0.5 s.
  EXPECT_NEAR(m.mean_completion_latency(), 0.5, 1e-9);
  EXPECT_TRUE(sim.network().conserves_funds());
}

TEST(FlowSim, FundsActuallyMove) {
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 5;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  sim.add_payment(payment(0, 1, 20, 0.5));
  (void)sim.run(no_demand(2));
  EXPECT_EQ(sim.network().available(graph::forward_arc(0)),
            from_units(30));
  EXPECT_EQ(sim.network().available(graph::backward_arc(0)),
            from_units(70));
}

TEST(FlowSim, NonAtomicPartialDeliveryByCapacity) {
  // Channel can carry only 50 units outbound; 80 requested; the rest can
  // never complete (no reverse traffic), leaving a partial payment.
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 20;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  sim.add_payment(payment(0, 1, 80, 1.0));
  const Metrics m = sim.run(no_demand(2));
  EXPECT_EQ(m.succeeded, 0u);
  EXPECT_EQ(m.partial, 1u);
  EXPECT_EQ(m.delivered_volume, from_units(50));
  EXPECT_NEAR(m.success_volume(), 50.0 / 80.0, 1e-9);
}

TEST(FlowSim, RetryCompletesAfterReverseTrafficRestoresBalance) {
  // 0 -> 1 exhausts its side, then 1 -> 0 replenishes it; the retry queue
  // finishes the first payment (packet-switching benefit, §4).
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 30;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  sim.add_payment(payment(0, 1, 80, 1.0));
  sim.add_payment(payment(1, 0, 60, 5.0));
  const Metrics m = sim.run(no_demand(2));
  EXPECT_EQ(m.succeeded, 2u);
  EXPECT_DOUBLE_EQ(m.success_volume(), 1.0);
  EXPECT_GT(m.total_attempt_rounds, 2u);  // retries happened
}

TEST(FlowSim, AtomicSchemeFailsWhenCapacityShort) {
  const graph::Graph g = graph::topology::make_line(2);
  schemes::MaxFlowScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 20;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  sim.add_payment(payment(0, 1, 80, 1.0));   // > 50 available: fails
  sim.add_payment(payment(0, 1, 30, 10.0));  // fits: succeeds
  const Metrics m = sim.run(no_demand(2));
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.partial, 0u);
  EXPECT_EQ(m.delivered_volume, from_units(30));
}

TEST(FlowSim, MaxFlowUsesMultiplePaths) {
  // Two disjoint 25-unit paths; a 40-unit atomic payment needs both.
  const graph::Graph g = graph::topology::make_ring(4);
  schemes::MaxFlowScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 10;
  FlowSimulator sim(g, std::vector<Amount>(4, from_units(50)), scheme, cfg);
  sim.add_payment(payment(0, 2, 40, 1.0));
  const Metrics m = sim.run(no_demand(4));
  EXPECT_EQ(m.succeeded, 1u);
}

TEST(FlowSim, InflightFundsUnavailableUntilDelta) {
  // Two same-direction payments 0.1 s apart; the channel holds 50+50:
  // the first locks 50, the second finds nothing until funds settle --
  // and they settle on the *receiver* side, so it still finds nothing.
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 3;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  sim.add_payment(payment(0, 1, 50, 1.0));
  sim.add_payment(payment(0, 1, 50, 1.1));
  const Metrics m = sim.run(no_demand(2));
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_EQ(m.failed, 1u);
}

TEST(FlowSim, DeadlineClosesPayment) {
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 30;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  PaymentRequest req = payment(0, 1, 80, 1.0);
  req.deadline = 2.0;  // not enough time for retries to matter
  sim.add_payment(req);
  PaymentRequest late = payment(1, 0, 60, 10.0);
  sim.add_payment(late);
  const Metrics m = sim.run(no_demand(2));
  // Reverse traffic arrives only after the deadline: partial delivery.
  EXPECT_EQ(m.partial, 1u);
  EXPECT_EQ(m.succeeded, 1u);  // the reverse payment itself
}

TEST(FlowSim, SeriesCollection) {
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 10;
  cfg.collect_series = true;
  cfg.series_bucket = 1.0;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  sim.add_payment(payment(0, 1, 10, 0.2));
  sim.add_payment(payment(0, 1, 10, 5.2));
  const Metrics m = sim.run(no_demand(2));
  ASSERT_GE(m.delivered_series.size(), 6u);
  EXPECT_DOUBLE_EQ(m.delivered_series[0], 10.0);  // completes at 0.7
  EXPECT_DOUBLE_EQ(m.delivered_series[5], 10.0);  // completes at 5.7
}

TEST(FlowSim, ArrivalsAfterEndIgnored) {
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimConfig cfg;
  cfg.end_time = 5;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
  sim.add_payment(payment(0, 1, 10, 9.0));
  const Metrics m = sim.run(no_demand(2));
  EXPECT_EQ(m.attempted, 0u);
}

TEST(FlowSim, ApiMisuseThrows) {
  const graph::Graph g = graph::topology::make_line(2);
  schemes::ShortestPathScheme scheme;
  FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, {});
  EXPECT_THROW(sim.add_payment(payment(0, 0, 10, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(sim.add_payment(payment(0, 9, 10, 1.0)),
               std::invalid_argument);
  (void)sim.run(no_demand(2));
  EXPECT_THROW((void)sim.run(no_demand(2)), std::logic_error);
  EXPECT_THROW(sim.add_payment(payment(0, 1, 10, 1.0)), std::logic_error);
}

TEST(FlowSim, OnChainRebalancingUnblocksOneWayTraffic) {
  // Pure one-way demand exhausts the channel; with on-chain rebalancing
  // enabled (§5.2.3) the router tops up its side and traffic continues.
  const graph::Graph g = graph::topology::make_line(2);
  const auto run = [&](bool rebalance) {
    schemes::ShortestPathScheme scheme;
    FlowSimConfig cfg;
    cfg.end_time = 60;
    cfg.enable_rebalancing = rebalance;
    cfg.rebalance_interval = 2.0;
    cfg.rebalance_delay = 1.0;
    FlowSimulator sim(g, std::vector<Amount>{from_units(100)}, scheme, cfg);
    for (int i = 0; i < 10; ++i) {
      sim.add_payment(payment(0, 1, 30, 1.0 + i));
    }
    auto m = sim.run(no_demand(2));
    EXPECT_TRUE(sim.network().conserves_funds());
    return m;
  };
  const Metrics without = run(false);
  const Metrics with = run(true);
  EXPECT_EQ(without.rebalance_events, 0u);
  EXPECT_GT(with.rebalance_events, 0u);
  EXPECT_GT(with.rebalanced_volume, 0);
  EXPECT_GT(with.succeeded, without.succeeded);
  EXPECT_GT(with.delivered_volume, without.delivered_volume);
}

TEST(FlowSim, ConservationAcrossABusyRun) {
  const graph::Graph g = graph::topology::make_isp32();
  schemes::WaterfillingScheme scheme(4);
  FlowSimConfig cfg;
  cfg.end_time = 10;
  FlowSimulator sim(
      g, std::vector<Amount>(g.edge_count(), from_units(200)), scheme, cfg);
  for (int i = 0; i < 200; ++i) {
    sim.add_payment(payment(static_cast<core::NodeId>(i % 32),
                            static_cast<core::NodeId>((i * 7 + 3) % 32),
                            5.0 + (i % 11), 0.01 * i));
  }
  const Metrics m = sim.run(no_demand(32));
  EXPECT_GT(m.succeeded, 0u);
  EXPECT_TRUE(sim.network().conserves_funds());
  EXPECT_EQ(sim.network().total_funds(),
            static_cast<Amount>(g.edge_count()) * from_units(200));
}

}  // namespace
}  // namespace spider::sim
