#include "core/network.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"

namespace spider::core {
namespace {

constexpr Preimage kKey = 42;
const LockHash kLock = hash_preimage(kKey);

graph::Path line_path(const graph::Graph& g, std::size_t hops) {
  graph::Path p{0, {}};
  for (graph::EdgeId e = 0; e < hops; ++e) {
    p.arcs.push_back(graph::forward_arc(e));
  }
  EXPECT_TRUE(p.valid(g));
  return p;
}

TEST(ChannelNetwork, EqualSplitConstruction) {
  const graph::Graph g = graph::topology::make_line(3);
  const ChannelNetwork net(g, std::vector<Amount>{1000, 501});
  EXPECT_EQ(net.channel(0).balance(Side::kA), 500);
  EXPECT_EQ(net.channel(0).balance(Side::kB), 500);
  // Odd milli-unit goes to side A.
  EXPECT_EQ(net.channel(1).balance(Side::kA), 251);
  EXPECT_EQ(net.channel(1).balance(Side::kB), 250);
  EXPECT_EQ(net.total_funds(), 1501);
}

TEST(ChannelNetwork, ExplicitDeposits) {
  const graph::Graph g = graph::topology::make_line(2);
  const std::vector<std::pair<Amount, Amount>> deposits{{300, 700}};
  const ChannelNetwork net(g, deposits);
  EXPECT_EQ(net.available(graph::forward_arc(0)), 300);
  EXPECT_EQ(net.available(graph::backward_arc(0)), 700);
}

TEST(ChannelNetwork, SizeMismatchThrows) {
  const graph::Graph g = graph::topology::make_line(3);
  EXPECT_THROW(ChannelNetwork(g, std::vector<Amount>{1000}),
               std::invalid_argument);
}

TEST(ChannelNetwork, PathAvailableIsBottleneck) {
  const graph::Graph g = graph::topology::make_line(4);
  const ChannelNetwork net(g, std::vector<Amount>{1000, 200, 600});
  const graph::Path p = line_path(g, 3);
  EXPECT_EQ(net.path_available(p), 100);  // 200/2 on the middle hop
  EXPECT_EQ(net.path_available(graph::Path{0, {}}), 0);
}

TEST(ChannelNetwork, LockSettleMovesFundsEndToEnd) {
  const graph::Graph g = graph::topology::make_line(3);
  ChannelNetwork net(g, std::vector<Amount>{1000, 1000});
  const graph::Path p = line_path(g, 2);
  const auto rl = net.lock_route(p, 200, kLock);
  ASSERT_TRUE(rl.has_value());
  // While in flight, funds are unavailable along the whole path
  // (paper §6.1).
  EXPECT_EQ(net.available(graph::forward_arc(0)), 300);
  EXPECT_EQ(net.available(graph::forward_arc(1)), 300);
  EXPECT_TRUE(net.conserves_funds());

  ASSERT_TRUE(net.settle_route(*rl, kKey));
  // Sender side lost 200 on hop 0; intermediate node 1 lost on hop 1 and
  // gained on hop 0; receiver gained on hop 1.
  EXPECT_EQ(net.available(graph::forward_arc(0)), 300);
  EXPECT_EQ(net.available(graph::backward_arc(0)), 700);
  EXPECT_EQ(net.available(graph::forward_arc(1)), 300);
  EXPECT_EQ(net.available(graph::backward_arc(1)), 700);
  EXPECT_TRUE(net.conserves_funds());
  EXPECT_EQ(net.total_funds(), 2000);
  EXPECT_EQ(net.imbalance(0), -400);
}

TEST(ChannelNetwork, LockRollsBackOnMidPathFailure) {
  const graph::Graph g = graph::topology::make_line(3);
  // Second hop has too little on the forward side.
  const std::vector<std::pair<Amount, Amount>> deposits{{500, 500},
                                                        {100, 900}};
  ChannelNetwork net(g, deposits);
  const graph::Path p = line_path(g, 2);
  EXPECT_FALSE(net.lock_route(p, 200, kLock).has_value());
  // First hop's partial lock was rolled back.
  EXPECT_EQ(net.available(graph::forward_arc(0)), 500);
  EXPECT_EQ(net.channel(0).pending(Side::kA), 0);
  EXPECT_TRUE(net.conserves_funds());
}

TEST(ChannelNetwork, FailRouteRestoresEverything) {
  const graph::Graph g = graph::topology::make_line(3);
  ChannelNetwork net(g, std::vector<Amount>{1000, 1000});
  const graph::Path p = line_path(g, 2);
  const auto rl = net.lock_route(p, 200, kLock);
  ASSERT_TRUE(rl);
  net.fail_route(*rl);
  EXPECT_EQ(net.available(graph::forward_arc(0)), 500);
  EXPECT_EQ(net.available(graph::forward_arc(1)), 500);
  EXPECT_TRUE(net.conserves_funds());
}

TEST(ChannelNetwork, SettleWithWrongKeyRefused) {
  const graph::Graph g = graph::topology::make_line(2);
  ChannelNetwork net(g, std::vector<Amount>{1000});
  const auto rl = net.lock_route(line_path(g, 1), 100, kLock);
  ASSERT_TRUE(rl);
  EXPECT_FALSE(net.settle_route(*rl, kKey + 1));
  // Still pending; correct key settles.
  EXPECT_TRUE(net.settle_route(*rl, kKey));
}

TEST(ChannelNetwork, DoubleSettleThrowsLogicError) {
  const graph::Graph g = graph::topology::make_line(2);
  ChannelNetwork net(g, std::vector<Amount>{1000});
  const auto rl = net.lock_route(line_path(g, 1), 100, kLock);
  ASSERT_TRUE(net.settle_route(*rl, kKey));
  EXPECT_THROW((void)net.settle_route(*rl, kKey), std::logic_error);
  EXPECT_THROW(net.fail_route(*rl), std::logic_error);
}

TEST(ChannelNetwork, ZeroOrNegativeAmountRejected) {
  const graph::Graph g = graph::topology::make_line(2);
  ChannelNetwork net(g, std::vector<Amount>{1000});
  EXPECT_FALSE(net.lock_route(line_path(g, 1), 0, kLock).has_value());
  EXPECT_FALSE(net.lock_route(line_path(g, 1), -5, kLock).has_value());
  EXPECT_FALSE(net.lock_route(graph::Path{0, {}}, 10, kLock).has_value());
}

TEST(ChannelNetwork, ArcSides) {
  EXPECT_EQ(ChannelNetwork::arc_side(graph::forward_arc(3)), Side::kA);
  EXPECT_EQ(ChannelNetwork::arc_side(graph::backward_arc(3)), Side::kB);
}

}  // namespace
}  // namespace spider::core
