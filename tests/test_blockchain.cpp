#include "chain/blockchain.hpp"

#include <gtest/gtest.h>

namespace spider::chain {
namespace {

BlockchainConfig small_blocks(std::size_t capacity) {
  BlockchainConfig cfg;
  cfg.block_interval = 10.0;
  cfg.block_capacity = capacity;
  return cfg;
}

TEST(Blockchain, SubmitAndMine) {
  Blockchain bc(small_blocks(10));
  const TxId a = bc.submit(TxKind::kPayment, 100, 5, 1.0);
  const TxId b = bc.submit(TxKind::kChannelOpen, 500, 7, 2.0);
  ASSERT_NE(a, kInvalidTx);
  ASSERT_NE(b, kInvalidTx);
  EXPECT_EQ(bc.mempool_size(), 2u);
  EXPECT_FALSE(bc.is_confirmed(a));

  const Block& blk = bc.mine_block(10.0);
  EXPECT_EQ(blk.height, 1u);
  EXPECT_EQ(blk.txs.size(), 2u);
  EXPECT_EQ(blk.total_fees, 12);
  EXPECT_TRUE(bc.is_confirmed(a));
  EXPECT_TRUE(bc.is_confirmed(b));
  EXPECT_EQ(bc.confirmation_time(a), 10.0);
  EXPECT_EQ(bc.mempool_size(), 0u);
  EXPECT_EQ(bc.total_fees_collected(), 12);
}

TEST(Blockchain, FeeMarketOrdersByFee) {
  Blockchain bc(small_blocks(2));
  const TxId cheap = bc.submit(TxKind::kPayment, 1, 1, 0.0);
  const TxId rich = bc.submit(TxKind::kPayment, 1, 10, 0.0);
  const TxId mid = bc.submit(TxKind::kPayment, 1, 5, 0.0);
  bc.mine_block(10.0);
  EXPECT_TRUE(bc.is_confirmed(rich));
  EXPECT_TRUE(bc.is_confirmed(mid));
  EXPECT_FALSE(bc.is_confirmed(cheap));  // congested out
  bc.mine_block(20.0);
  EXPECT_TRUE(bc.is_confirmed(cheap));
  EXPECT_EQ(bc.confirmation_time(cheap), 20.0);
}

TEST(Blockchain, EqualFeesConfirmInSubmissionOrder) {
  Blockchain bc(small_blocks(1));
  const TxId first = bc.submit(TxKind::kPayment, 1, 5, 0.0);
  const TxId second = bc.submit(TxKind::kPayment, 1, 5, 0.0);
  bc.mine_block(10.0);
  EXPECT_TRUE(bc.is_confirmed(first));
  EXPECT_FALSE(bc.is_confirmed(second));
}

TEST(Blockchain, RelayFloorRejects) {
  BlockchainConfig cfg = small_blocks(10);
  cfg.min_relay_fee = 10;
  Blockchain bc(cfg);
  EXPECT_EQ(bc.submit(TxKind::kPayment, 1, 5, 0.0), kInvalidTx);
  EXPECT_NE(bc.submit(TxKind::kPayment, 1, 10, 0.0), kInvalidTx);
}

TEST(Blockchain, BumpFee) {
  Blockchain bc(small_blocks(1));
  const TxId stuck = bc.submit(TxKind::kPayment, 1, 1, 0.0);
  const TxId rich = bc.submit(TxKind::kPayment, 1, 10, 0.0);
  EXPECT_FALSE(bc.bump_fee(stuck, 1));   // not an increase
  EXPECT_FALSE(bc.bump_fee(999, 50));    // unknown
  EXPECT_TRUE(bc.bump_fee(stuck, 20));   // overtakes
  bc.mine_block(10.0);
  EXPECT_TRUE(bc.is_confirmed(stuck));
  EXPECT_FALSE(bc.is_confirmed(rich));
}

TEST(Blockchain, FeeEstimation) {
  Blockchain bc(small_blocks(2));
  EXPECT_EQ(bc.estimate_fee(), 0);  // empty mempool: relay floor
  (void)bc.submit(TxKind::kPayment, 1, 3, 0.0);
  EXPECT_EQ(bc.estimate_fee(), 0);  // still room in the next block
  (void)bc.submit(TxKind::kPayment, 1, 8, 0.0);
  (void)bc.submit(TxKind::kPayment, 1, 5, 0.0);
  // Next block takes fees {8, 5}; entry now requires > 5.
  EXPECT_EQ(bc.estimate_fee(), 6);
}

TEST(Blockchain, BadInputs) {
  EXPECT_THROW(Blockchain(BlockchainConfig{0.0, 10, 0}),
               std::invalid_argument);
  EXPECT_THROW(Blockchain(BlockchainConfig{10.0, 0, 0}),
               std::invalid_argument);
  Blockchain bc;
  EXPECT_THROW((void)bc.submit(TxKind::kPayment, -1, 0, 0.0),
               std::invalid_argument);
}

TEST(Blockchain, KindNames) {
  EXPECT_EQ(to_string(TxKind::kChannelOpen), "channel-open");
  EXPECT_EQ(to_string(TxKind::kPenalty), "penalty");
  EXPECT_EQ(to_string(TxKind::kRebalanceDeposit), "rebalance-deposit");
}

TEST(Blockchain, SustainedCongestionGrowsMempool) {
  // Arrival rate of 5 txs per block with capacity 2: backlog grows, and
  // the estimated fee climbs as users outbid each other -- the paper's
  // §1 motivation for going off-chain.
  Blockchain bc(small_blocks(2));
  Amount fee = 1;
  Amount last_estimate = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) {
      fee = std::max(fee, bc.estimate_fee());
      (void)bc.submit(TxKind::kPayment, 100, fee, round * 10.0);
    }
    bc.mine_block((round + 1) * 10.0);
    last_estimate = bc.estimate_fee();
  }
  EXPECT_GE(bc.mempool_size(), 20u);
  EXPECT_GT(last_estimate, 1);
}

}  // namespace
}  // namespace spider::chain
