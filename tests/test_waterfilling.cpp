#include "routing/waterfilling.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace spider::routing {
namespace {

TEST(Waterfill, SinglePath) {
  const auto a = waterfill(std::vector<double>{10.0}, 4.0);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0], 4.0);
}

TEST(Waterfill, PrefersHighestCapacity) {
  // Caps 10 and 4: pouring 6 should take it all from the first path
  // (its residual 4 still >= the second path's 4).
  const auto a = waterfill(std::vector<double>{10.0, 4.0}, 6.0);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
}

TEST(Waterfill, LevelsAcrossPaths) {
  // Caps 10 and 4, amount 8: level at 3 => allocations 7 and 1.
  const auto a = waterfill(std::vector<double>{10.0, 4.0}, 8.0);
  EXPECT_DOUBLE_EQ(a[0], 7.0);
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(a[0] + a[1], 8.0);
  // Residuals equalized.
  EXPECT_DOUBLE_EQ(10.0 - a[0], 4.0 - a[1]);
}

TEST(Waterfill, ExceedingTotalSaturatesEverything) {
  const auto a = waterfill(std::vector<double>{3.0, 5.0}, 100.0);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 5.0);
}

TEST(Waterfill, ZeroAmountOrEmpty) {
  EXPECT_TRUE(waterfill({}, 5.0).empty());
  const auto a = waterfill(std::vector<double>{3.0}, 0.0);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
}

TEST(Waterfill, NegativeCapacityTreatedAsZero) {
  const auto a = waterfill(std::vector<double>{-2.0, 4.0}, 3.0);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 3.0);
}

TEST(Waterfill, LevelDiagnostic) {
  EXPECT_DOUBLE_EQ(waterfill_level(std::vector<double>{10.0, 4.0}, 8.0), 3.0);
  EXPECT_DOUBLE_EQ(waterfill_level(std::vector<double>{10.0, 4.0}, 0.0),
                   10.0);
  EXPECT_DOUBLE_EQ(waterfill_level(std::vector<double>{5.0}, 100.0), 0.0);
}

TEST(Waterfill, MatchesPaperDescription) {
  // §5.3.1: pour onto the highest path until level equals the second,
  // then onto both until they reach the third, and so on.
  const std::vector<double> caps{9.0, 6.0, 3.0};
  // Pour 3: all onto path 0 (level 6 == cap of path 1).
  auto a = waterfill(caps, 3.0);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  // Pour 9: 3 brings 0 level with 1, then 6 split equally => (6, 3, 0).
  a = waterfill(caps, 9.0);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
  EXPECT_DOUBLE_EQ(a[1], 3.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
}

class WaterfillPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WaterfillPropertyTest, ConservationAndLevelling) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> cap(0.0, 20.0);
  std::uniform_real_distribution<double> amt(0.0, 60.0);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> caps(1 + rng() % 6);
    for (double& c : caps) c = cap(rng);
    const double amount = amt(rng);
    const auto a = waterfill(caps, amount);
    const double total_cap =
        std::accumulate(caps.begin(), caps.end(), 0.0);
    const double total = std::accumulate(a.begin(), a.end(), 0.0);
    EXPECT_NEAR(total, std::min(amount, total_cap), 1e-9);
    double min_residual_allocated = 1e18;
    double level = -1;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      EXPECT_GE(a[i], -1e-12);
      EXPECT_LE(a[i], caps[i] + 1e-9);
      if (a[i] > 1e-9) {
        min_residual_allocated =
            std::min(min_residual_allocated, caps[i] - a[i]);
        if (level < 0) level = caps[i] - a[i];
        EXPECT_NEAR(caps[i] - a[i], level, 1e-9)
            << "allocated paths not level";
      }
    }
    // Unallocated paths sit below the water level.
    if (level >= 0 && total < total_cap - 1e-9) {
      for (std::size_t i = 0; i < caps.size(); ++i) {
        if (a[i] <= 1e-9) EXPECT_LE(caps[i], level + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace spider::routing
