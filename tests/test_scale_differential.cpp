// Differential pin of the CSR substrate against the seed build: the
// golden values below were produced by the pre-CSR adjacency-list
// implementation (same trial specs, Runner(1)) and hard-coded here.
// Every scheme family -- flow shortest-path/waterfilling/LP/primal-dual
// and the packet-backed spider-cc/packet-widest -- must reproduce them
// to the last bit, on both the isp32 and full-Ripple-style topologies,
// or the graph-substrate port changed observable behaviour.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"

namespace {

using namespace spider;

struct GoldenRow {
  const char* scheme;
  const char* topology;
  std::size_t capacity;
  double success_ratio;
  double success_volume;
  double latency_p95;
};

// Seed-build output (fig6/fig7-style mini sweep, txns=600, end_time=40,
// workload_seed=derive_seed(33, seed_index)) printed at %.17g.
const GoldenRow kGolden[] = {
    {"shortest-path", "isp32", 1500, 0.73333333333333328, 0.75571516943407202,
     6.0429639023813282},
    {"spider-waterfilling", "isp32", 1500, 0.93999999999999995,
     0.95563396013209145, 1.9109529749704406},
    {"spider-lp", "isp32", 1500, 0.53000000000000003, 0.55532576069758732,
     3.9241897584845358},
    {"spider-primal-dual", "isp32", 1500, 0.57999999999999996,
     0.59958090598383396, 0.50000000000000355},
    {"spider-cc", "isp32", 1500, 0.93999999999999995, 0.95919211570775287,
     0.29427271762092821},
    {"packet-widest", "isp32", 1500, 0.94833333333333336, 0.95290156600198972,
     0.29427271762092821},
    {"shortest-path", "ripple-400", 1500, 0.70666666666666667,
     0.68451375209335497, 1.4330125702369627},
    {"spider-waterfilling", "ripple-400", 1500, 0.94833333333333336,
     0.95626115603636386, 3.9241897584845358},
    {"spider-lp", "ripple-400", 1500, 0.71999999999999997,
     0.69349977079333791, 1.0746078283213174},
    {"spider-primal-dual", "ripple-400", 1500, 0.80666666666666664,
     0.75853179477004062, 1.6548170999431815},
    {"spider-cc", "ripple-400", 1500, 0.93000000000000005,
     0.93846757755442822, 0.60429639023813286},
    {"packet-widest", "ripple-400", 1500, 0.91833333333333333,
     0.92573774979111911, 0.5232991146814947},
    {"spider-waterfilling", "isp32", 400, 0.6166666666666667,
     0.60804335966246592, 8.0584218776148173},
};

std::vector<exp::TrialSpec> golden_trials() {
  std::vector<exp::TrialSpec> trials;
  const char* schemes[] = {"shortest-path",      "spider-waterfilling",
                           "spider-lp",          "spider-primal-dual",
                           "spider-cc",          "packet-widest"};
  for (const char* topo : {"isp32", "ripple-400"}) {
    for (const char* s : schemes) {
      exp::TrialSpec t;
      t.scheme = s;
      t.topology = topo;
      t.workload =
          std::string(topo).rfind("ripple", 0) == 0 ? "ripple" : "isp";
      t.seed_index = 0;
      t.workload_seed = exp::derive_seed(33, 0);
      t.txns = 600;
      t.end_time = 40.0;
      t.capacity_units = 1500.0;
      trials.push_back(std::move(t));
    }
  }
  // fig7-style capacity point (different seed replica).
  exp::TrialSpec t;
  t.scheme = "spider-waterfilling";
  t.topology = "isp32";
  t.workload = "isp";
  t.seed_index = 1;
  t.workload_seed = exp::derive_seed(33, 1);
  t.txns = 600;
  t.end_time = 40.0;
  t.capacity_units = 400.0;
  trials.push_back(std::move(t));
  return trials;
}

TEST(ScaleDifferential, CsrSubstrateMatchesSeedBuildExactly) {
  const std::vector<exp::TrialSpec> trials = golden_trials();
  ASSERT_EQ(trials.size(), std::size(kGolden));
  const exp::Runner runner(1);
  const std::vector<exp::TrialResult> results =
      exp::run_trials(trials, runner);
  ASSERT_EQ(results.size(), std::size(kGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GoldenRow& want = kGolden[i];
    const exp::TrialResult& got = results[i];
    SCOPED_TRACE(std::string(want.scheme) + " on " + want.topology +
                 " cap=" + std::to_string(want.capacity));
    ASSERT_EQ(got.spec.scheme, want.scheme);
    ASSERT_EQ(got.spec.topology, want.topology);
    ASSERT_EQ(static_cast<std::size_t>(got.spec.capacity_units),
              want.capacity);
    // Exact double equality on purpose: the CSR port claims
    // byte-identity with the seed build, not "close enough".
    EXPECT_EQ(got.metrics.success_ratio(), want.success_ratio);
    EXPECT_EQ(got.metrics.success_volume(), want.success_volume);
    EXPECT_EQ(got.metrics.latency_p95(), want.latency_p95);
  }
}

TEST(ScaleDifferential, ThreadCountDoesNotChangeSweepResults) {
  // The same trials on a multi-threaded runner must reproduce the
  // single-threaded (and therefore seed) metrics exactly.
  std::vector<exp::TrialSpec> trials = golden_trials();
  trials.resize(4);  // keep the cross-thread re-run cheap
  const std::vector<exp::TrialResult> serial =
      exp::run_trials(trials, exp::Runner(1));
  const std::vector<exp::TrialResult> parallel =
      exp::run_trials(trials, exp::Runner(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(trials[i].scheme);
    EXPECT_EQ(serial[i].metrics.success_ratio(),
              parallel[i].metrics.success_ratio());
    EXPECT_EQ(serial[i].metrics.success_volume(),
              parallel[i].metrics.success_volume());
    EXPECT_EQ(serial[i].metrics.latency_p95(),
              parallel[i].metrics.latency_p95());
  }
}

}  // namespace
