// Unit and differential tests of the fault-injection subsystem
// (src/faults/): plan/profile values, injector state machine, the
// empty-plan byte-identity guarantee for both simulators, and the
// degradation machinery (down sources, closed channels, withholding,
// stale probes) observed through sim::Metrics.

#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "faults/fault_profile.hpp"
#include "faults/injector.hpp"
#include "graph/topology.hpp"
#include "schemes/schemes.hpp"
#include "sim/audit.hpp"
#include "sim/flow_sim.hpp"
#include "sim/packet_sim.hpp"

namespace spider::faults {
namespace {

using core::Amount;
using core::from_units;

// ---------------------------------------------------------------------
// FaultPlan: value semantics, normalize, validate.
// ---------------------------------------------------------------------

TEST(FaultPlan, NormalizeIsAStableSortByTime) {
  FaultPlan plan;
  plan.add({5.0, FaultKind::kNodeDown, 1, 2.0});
  plan.add({1.0, FaultKind::kWithhold, 0, 1.0});
  plan.add({5.0, FaultKind::kChannelClose, 0, 0.0});  // ties keep order
  plan.normalize();
  EXPECT_EQ(plan.at(0).kind, FaultKind::kWithhold);
  EXPECT_EQ(plan.at(1).kind, FaultKind::kNodeDown);
  EXPECT_EQ(plan.at(2).kind, FaultKind::kChannelClose);
}

TEST(FaultPlan, ValidateRejectsMalformedEvents) {
  const graph::Graph g = graph::topology::make_line(3);  // 3 nodes, 2 edges
  {
    FaultPlan p;
    p.add({1.0, FaultKind::kNodeDown, 3, 1.0});  // node out of range
    EXPECT_THROW(p.validate(g), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add({1.0, FaultKind::kChannelClose, 2, 0.0});  // edge out of range
    EXPECT_THROW(p.validate(g), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add({-1.0, FaultKind::kNodeDown, 0, 1.0});  // negative time
    EXPECT_THROW(p.validate(g), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add({1.0, FaultKind::kProbeStale, 2, 1.0});  // stale target must be 0
    EXPECT_THROW(p.validate(g), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add({1.0, FaultKind::kNodeDown, 2, 1.0});
    p.add({2.0, FaultKind::kChannelClose, 1, 0.0});
    p.add({3.0, FaultKind::kProbeStale, 0, 2.0});
    EXPECT_NO_THROW(p.validate(g));
  }
}

TEST(FaultKindNames, AreStable) {
  EXPECT_EQ(to_string(FaultKind::kNodeDown), "node-down");
  EXPECT_EQ(to_string(FaultKind::kChannelClose), "channel-close");
  EXPECT_EQ(to_string(FaultKind::kWithhold), "withhold");
  EXPECT_EQ(to_string(FaultKind::kProbeStale), "probe-stale");
}

// ---------------------------------------------------------------------
// FaultProfile: spec parsing and seeded generation.
// ---------------------------------------------------------------------

TEST(FaultProfile, SpecRoundTripsThroughToString) {
  FaultProfile p;
  p.seed = 42;
  p.horizon = 120.0;
  p.node_churn_rate = 0.05;
  p.mean_downtime = 4.5;
  p.channel_close_rate = 0.01;
  p.withhold_rate = 0.2;
  p.mean_withhold = 1.5;
  p.stale_rate = 0.02;
  p.mean_stale = 3.0;
  EXPECT_EQ(parse_profile(to_string(p)), p);
}

TEST(FaultProfile, ParseAcceptsBothSeparators) {
  const FaultProfile a = parse_profile("churn=0.1,downtime=3,seed=9");
  const FaultProfile b = parse_profile("churn=0.1;downtime=3;seed=9");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.node_churn_rate, 0.1);
  EXPECT_EQ(a.mean_downtime, 3.0);
  EXPECT_EQ(a.seed, 9u);
}

TEST(FaultProfile, ParseRejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)parse_profile("chrn=0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("churn=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_profile("churn"), std::invalid_argument);
  EXPECT_TRUE(parse_profile("").quiet());
}

TEST(FaultProfile, GeneratePlanIsDeterministic) {
  const graph::Graph g = graph::topology::make_ring(8);
  const FaultProfile p = parse_profile(
      "churn=0.2;downtime=3;close=0.05;withhold=0.3;hold=1;stale=0.1;"
      "staledur=2;seed=7;horizon=60");
  const FaultPlan a = generate_plan(p, g);
  const FaultPlan b = generate_plan(p, g);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(FaultProfile, FaultKindsDrawIndependentStreams) {
  // Enabling channel closures must not perturb the node-down schedule:
  // each kind draws from its own salted engine.
  const graph::Graph g = graph::topology::make_ring(8);
  const FaultProfile churn_only =
      parse_profile("churn=0.2;downtime=3;seed=7;horizon=60");
  const FaultProfile churn_and_close =
      parse_profile("churn=0.2;downtime=3;close=0.1;seed=7;horizon=60");
  const FaultPlan plan_a = generate_plan(churn_only, g);
  const FaultPlan plan_b = generate_plan(churn_and_close, g);
  std::vector<FaultEvent> downs_a;
  for (const FaultEvent& ev : plan_a.events()) {
    if (ev.kind == FaultKind::kNodeDown) downs_a.push_back(ev);
  }
  std::vector<FaultEvent> downs_b;
  for (const FaultEvent& ev : plan_b.events()) {
    if (ev.kind == FaultKind::kNodeDown) downs_b.push_back(ev);
  }
  EXPECT_EQ(downs_a, downs_b);
  EXPECT_FALSE(downs_a.empty());
}

TEST(FaultProfile, QuietProfileGeneratesEmptyPlan) {
  const graph::Graph g = graph::topology::make_ring(4);
  FaultProfile p;
  p.horizon = 100.0;
  EXPECT_TRUE(p.quiet());
  EXPECT_TRUE(generate_plan(p, g).empty());
}

TEST(FaultProfile, GenerateWithoutHorizonThrows) {
  const graph::Graph g = graph::topology::make_ring(4);
  const FaultProfile p = parse_profile("churn=0.1");
  EXPECT_THROW(generate_plan(p, g), std::invalid_argument);
}

// ---------------------------------------------------------------------
// FaultInjector: the runtime state machine.
// ---------------------------------------------------------------------

TEST(FaultInjector, OverlappingDowntimeWindowsNest) {
  const graph::Graph g = graph::topology::make_line(3);
  FaultPlan plan;
  plan.add({1.0, FaultKind::kNodeDown, 1, 5.0});  // window A: [1, 6)
  plan.add({2.0, FaultKind::kNodeDown, 1, 2.0});  // window B: [2, 4)
  FaultInjector inj(plan);
  inj.bind(g);

  const auto a = inj.apply(0, 1.0);
  EXPECT_TRUE(a.needs_end_event);
  EXPECT_TRUE(a.became_active);
  EXPECT_EQ(a.until, 6.0);
  EXPECT_TRUE(inj.node_down(1));

  const auto b = inj.apply(1, 2.0);
  EXPECT_FALSE(b.became_active);  // already down
  // Window B ends first: the node must stay down until A also ends.
  EXPECT_FALSE(inj.expire(FaultKind::kNodeDown, 1));
  EXPECT_TRUE(inj.node_down(1));
  EXPECT_TRUE(inj.expire(FaultKind::kNodeDown, 1));
  EXPECT_FALSE(inj.node_down(1));
  // Underflow is a protocol bug, not a silent no-op.
  EXPECT_THROW(inj.expire(FaultKind::kNodeDown, 1), std::logic_error);
}

TEST(FaultInjector, ClosuresArePermanentAndWithholdingSelfExpires) {
  const graph::Graph g = graph::topology::make_line(3);
  FaultPlan plan;
  plan.add({1.0, FaultKind::kChannelClose, 0, 0.0});
  plan.add({2.0, FaultKind::kWithhold, 2, 3.0});  // withhold until t=5
  plan.add({3.0, FaultKind::kWithhold, 2, 1.0});  // shorter: keeps max
  FaultInjector inj(plan);
  inj.bind(g);

  const auto c = inj.apply(0, 1.0);
  EXPECT_FALSE(c.needs_end_event);  // permanent: no end event
  EXPECT_TRUE(inj.edge_closed(0));

  inj.apply(1, 2.0);
  inj.apply(2, 3.0);
  EXPECT_TRUE(inj.withholding(2, 3.5));
  EXPECT_EQ(inj.withhold_until(2), 5.0);  // max of the two spells
  EXPECT_FALSE(inj.withholding(2, 5.0));  // self-expired

  // bind() resets everything for the next run.
  inj.bind(g);
  EXPECT_FALSE(inj.edge_closed(0));
  EXPECT_FALSE(inj.withholding(2, 3.5));
}

TEST(FaultInjector, PackEndRoundTrips) {
  const std::uint64_t w =
      FaultInjector::pack_end(FaultKind::kProbeStale, 0xabcdefu);
  EXPECT_EQ(FaultInjector::unpack_end_kind(w), FaultKind::kProbeStale);
  EXPECT_EQ(FaultInjector::unpack_end_target(w), 0xabcdefu);
}

TEST(FaultInjector, PathBlockedSemantics) {
  // line-4: 0 -1- 2 -3 with edges 0,1,2; forward arcs 0,2,4.
  const graph::Graph g = graph::topology::make_line(4);
  const graph::Path path{0,
                         {graph::forward_arc(0), graph::forward_arc(1),
                          graph::forward_arc(2)}};
  FaultPlan plan;
  plan.add({1.0, FaultKind::kNodeDown, 1, 2.0});  // intermediate hop
  plan.add({1.0, FaultKind::kNodeDown, 0, 2.0});  // the source itself
  plan.add({1.0, FaultKind::kNodeDown, 3, 2.0});  // the destination
  plan.add({1.0, FaultKind::kChannelClose, 1, 0.0});
  FaultInjector inj(plan);

  inj.bind(g);
  EXPECT_FALSE(inj.path_blocked(path, g));
  inj.apply(0, 1.0);  // intermediate node down
  EXPECT_TRUE(inj.path_blocked(path, g));

  inj.bind(g);
  inj.apply(1, 1.0);  // source down: the originator's problem, not the
  EXPECT_FALSE(inj.path_blocked(path, g));  // path's

  inj.bind(g);
  inj.apply(2, 1.0);  // destination down
  EXPECT_TRUE(inj.path_blocked(path, g));

  inj.bind(g);
  inj.apply(3, 1.0);  // middle channel closed
  EXPECT_TRUE(inj.path_blocked(path, g));
}

// ---------------------------------------------------------------------
// Empty-plan byte-identity: an injector with no events must leave both
// simulators bit-for-bit identical to runs without the subsystem.
// ---------------------------------------------------------------------

sim::Metrics run_packet(const graph::Graph& g, FaultInjector* inj) {
  sim::PacketSimConfig cfg;
  cfg.end_time = 40.0;
  cfg.seed = 3;
  cfg.enable_congestion_control = true;
  cfg.collect_series = true;
  cfg.faults = inj;
  sim::PacketSimulator sim(
      g, std::vector<Amount>(g.edge_count(), from_units(50)), cfg);
  core::PaymentRequest req;
  for (core::NodeId v = 0; v < 8; ++v) {
    req.src = v;
    req.dst = (v + 3) % 8;
    req.amount = from_units(30);
    req.arrival = 0.5 * static_cast<double>(v);
    req.deadline = req.arrival + 20.0;
    sim.submit(req);
  }
  return sim.run();
}

TEST(FaultDifferential, EmptyPlanPacketSimIsByteIdentical) {
  const graph::Graph g = graph::topology::make_ring(8);
  const sim::Metrics without = run_packet(g, nullptr);
  FaultInjector empty;
  const sim::Metrics with_empty = run_packet(g, &empty);
  EXPECT_EQ(without, with_empty);
  EXPECT_EQ(with_empty.fault_events_applied, 0u);
}

sim::Metrics run_flow(const graph::Graph& g, FaultInjector* inj) {
  schemes::WaterfillingScheme scheme;
  sim::FlowSimConfig cfg;
  cfg.end_time = 30.0;
  cfg.collect_series = true;
  cfg.faults = inj;
  sim::FlowSimulator fs(
      g, std::vector<Amount>(g.edge_count(), from_units(40)), scheme, cfg);
  core::PaymentRequest req;
  for (core::NodeId v = 0; v < 6; ++v) {
    req.src = v;
    req.dst = (v + 2) % 6;
    req.amount = from_units(25);
    req.arrival = 0.4 * static_cast<double>(v);
    fs.add_payment(req);
  }
  return fs.run(fluid::PaymentGraph(g.node_count()));
}

TEST(FaultDifferential, EmptyPlanFlowSimIsByteIdentical) {
  const graph::Graph g = graph::topology::make_ring(6);
  const sim::Metrics without = run_flow(g, nullptr);
  FaultInjector empty;
  const sim::Metrics with_empty = run_flow(g, &empty);
  EXPECT_EQ(without, with_empty);
  EXPECT_EQ(with_empty.fault_events_applied, 0u);
}

// The published-table path: a fig6-style tiny trial with an all-zero
// fault profile (non-empty spec, empty generated plan) must reproduce
// the no-subsystem metrics bit for bit -- pinning the exact grid the CI
// smoke job runs, like the auditor's differential test.
TEST(FaultDifferential, Fig6TinyTrialWithQuietProfileIsBitIdentical) {
  exp::TrialSpec spec;
  spec.scheme = "spider-waterfilling";
  spec.topology = "ring-8";
  spec.workload = "isp";
  spec.txns = 400;
  spec.end_time = 30.0;
  spec.capacity_units = 200.0;

  const exp::TrialResult plain = exp::run_trial(spec);
  spec.faults = "churn=0;close=0;withhold=0;stale=0";
  const exp::TrialResult quiet = exp::run_trial(spec);
  EXPECT_GT(plain.metrics.attempted, 0u);
  EXPECT_EQ(plain.metrics, quiet.metrics);
}

TEST(FaultDifferential, FaultyTrialIsDeterministicAndDegrades) {
  exp::TrialSpec spec;
  spec.scheme = "spider-waterfilling";
  spec.topology = "ring-8";
  spec.workload = "isp";
  spec.txns = 400;
  spec.end_time = 30.0;
  spec.capacity_units = 200.0;
  const exp::TrialResult plain = exp::run_trial(spec);

  spec.faults = "churn=0.2;downtime=4;close=0.02;seed=17";
  spec.audit = true;  // the degradation machinery must keep funds sound
  const exp::TrialResult a = exp::run_trial(spec);
  const exp::TrialResult b = exp::run_trial(spec);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_GT(a.metrics.fault_events_applied, 0u);
  EXPECT_GT(a.metrics.fault_node_downs, 0u);
  // Faults hurt, they never help: delivered volume cannot exceed the
  // fault-free run's.
  EXPECT_LE(a.metrics.delivered_volume, plain.metrics.delivered_volume);
}

// ---------------------------------------------------------------------
// Degradation machinery, one fault kind at a time.
// ---------------------------------------------------------------------

// Regression for the sweep-expiry hazard: failing (or launching) a unit
// whose source is down must abandon it at the host, never enqueue it at
// the dead router. Before the launch guard, the unit would sit in the
// down node's queue and block the head of the queue after recovery.
TEST(FaultDegradation, DownSourceAbandonsLaunchesInsteadOfQueueing) {
  const graph::Graph g = graph::topology::make_line(3);
  FaultPlan plan;
  plan.add({0.5, FaultKind::kNodeDown, 0, 10.0});  // source down [0.5, 10.5)
  FaultInjector inj(plan);

  sim::AuditConfig acfg;
  acfg.check_every_events = 1;
  acfg.throw_on_violation = true;
  sim::InvariantAuditor auditor(acfg);

  sim::PacketSimConfig cfg;
  cfg.end_time = 20.0;
  cfg.faults = &inj;
  cfg.auditor = &auditor;
  sim::PacketSimulator sim(
      g, std::vector<Amount>(g.edge_count(), from_units(50)), cfg);
  core::PaymentRequest req;
  req.src = 0;
  req.dst = 2;
  req.amount = from_units(20);
  req.arrival = 1.0;  // launches while the source is down
  req.deadline = 15.0;
  sim.submit(req);
  const sim::Metrics m = sim.run();
  EXPECT_GT(m.fault_units_failed, 0u);
  EXPECT_EQ(m.succeeded, 0u);
  EXPECT_EQ(sim.queued_units(), 0u);  // nothing stranded in a dead queue
  EXPECT_TRUE(auditor.ok()) << auditor.summary();
}

TEST(FaultDegradation, MidRunChannelCloseFailsCrossingUnitsAndConserves) {
  const graph::Graph g = graph::topology::make_ring(4);
  FaultPlan plan;
  plan.add({2.0, FaultKind::kChannelClose, 0, 0.0});
  FaultInjector inj(plan);

  sim::AuditConfig acfg;
  acfg.check_every_events = 1;
  acfg.throw_on_violation = true;
  sim::InvariantAuditor auditor(acfg);

  sim::PacketSimConfig cfg;
  cfg.end_time = 30.0;
  cfg.faults = &inj;
  cfg.auditor = &auditor;
  sim::PacketSimulator sim(
      g, std::vector<Amount>(g.edge_count(), from_units(40)), cfg);
  core::PaymentRequest req;
  for (core::NodeId v = 0; v < 4; ++v) {
    req.src = v;
    req.dst = (v + 2) % 4;
    req.amount = from_units(30);
    req.arrival = 0.25 * static_cast<double>(v);
    req.deadline = req.arrival + 20.0;
    sim.submit(req);
  }
  const sim::Metrics m = sim.run();
  EXPECT_EQ(m.fault_channel_closures, 1u);
  EXPECT_TRUE(auditor.ok()) << auditor.summary();
}

TEST(FaultDegradation, WithholdingDelaysFlowCompletionPastDelta) {
  const graph::Graph g = graph::topology::make_line(2);
  FaultPlan plan;
  plan.add({0.5, FaultKind::kWithhold, 1, 6.0});  // dst withholds [0.5,6.5)
  FaultInjector inj(plan);

  schemes::ShortestPathScheme scheme;
  sim::FlowSimConfig cfg;
  cfg.end_time = 20.0;
  cfg.faults = &inj;
  sim::FlowSimulator fs(g, std::vector<Amount>(1, from_units(100)), scheme,
                        cfg);
  core::PaymentRequest req;
  req.src = 0;
  req.dst = 1;
  req.amount = from_units(10);
  req.arrival = 1.0;
  fs.add_payment(req);
  const sim::Metrics m = fs.run(fluid::PaymentGraph(g.node_count()));
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_GE(m.fault_withheld_acks, 1u);
  // Settled only once the spell expired at t=6.5: latency spans it.
  EXPECT_GE(m.mean_completion_latency(), 5.0);
}

TEST(FaultDegradation, StaleProbesAreCountedAndClear) {
  exp::TrialSpec spec;
  spec.scheme = "spider-waterfilling";
  spec.topology = "ring-8";
  spec.txns = 400;
  spec.end_time = 30.0;
  spec.capacity_units = 200.0;
  spec.audit = true;
  spec.faults = "stale=0.2;staledur=3;seed=5";
  const exp::TrialResult r = exp::run_trial(spec);
  EXPECT_GT(r.metrics.fault_stale_spells, 0u);
  EXPECT_GT(r.metrics.fault_stale_decisions, 0u);
  EXPECT_GT(r.metrics.succeeded, 0u);  // stale signals degrade, not halt
}

TEST(FaultDegradation, DownEndpointsBackOffExponentially) {
  const graph::Graph g = graph::topology::make_line(2);
  FaultPlan plan;
  plan.add({0.5, FaultKind::kNodeDown, 1, 8.0});  // dst down [0.5, 8.5)
  FaultInjector inj(plan);

  schemes::ShortestPathScheme scheme;
  sim::FlowSimConfig cfg;
  cfg.end_time = 30.0;
  cfg.faults = &inj;
  sim::FlowSimulator fs(g, std::vector<Amount>(1, from_units(100)), scheme,
                        cfg);
  core::PaymentRequest req;
  req.src = 0;
  req.dst = 1;
  req.amount = from_units(10);
  req.arrival = 1.0;
  fs.add_payment(req);
  const sim::Metrics m = fs.run(fluid::PaymentGraph(g.node_count()));
  // The payment eventually completes after the downtime window ends at
  // t=8.5 (latency spans the outage)...
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_GE(m.mean_completion_latency(), 7.0);
  // ...and the outage was spent deferring in backoff, not attempting:
  // the deferral counter is exercised on every poll that lands inside
  // a backoff window.
  EXPECT_GT(m.fault_backoff_retries, 0u);
}

// ---------------------------------------------------------------------
// Report plumbing: the fault counters survive both serializations.
// ---------------------------------------------------------------------

TEST(FaultReport, CountersRoundTripThroughJsonAndCsv) {
  exp::TrialSpec spec;
  spec.scheme = "shortest-path";
  spec.topology = "ring-8";
  spec.txns = 300;
  spec.end_time = 20.0;
  spec.capacity_units = 200.0;
  spec.faults = "churn=0.3;downtime=3;withhold=0.3;hold=1;seed=3";
  const sim::Metrics m = exp::run_trial(spec).metrics;
  ASSERT_GT(m.fault_events_applied, 0u);

  const sim::Metrics from_json =
      exp::report::metrics_from_json(exp::report::metrics_to_json(m));
  EXPECT_EQ(m, from_json);

  const sim::Metrics from_csv =
      exp::report::metrics_from_csv_row(exp::report::metrics_csv_row(m));
  EXPECT_EQ(from_csv.fault_events_applied, m.fault_events_applied);
  EXPECT_EQ(from_csv.fault_node_downs, m.fault_node_downs);
  EXPECT_EQ(from_csv.fault_withhold_spells, m.fault_withhold_spells);
  EXPECT_EQ(from_csv.fault_units_failed, m.fault_units_failed);
  EXPECT_EQ(from_csv.fault_reroutes, m.fault_reroutes);
  EXPECT_EQ(from_csv.fault_withheld_acks, m.fault_withheld_acks);
  EXPECT_EQ(from_csv.fault_backoff_retries, m.fault_backoff_retries);
}

}  // namespace
}  // namespace spider::faults
