#include "schemes/schemes.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "workload/workload.hpp"

namespace spider::schemes {
namespace {

using core::Amount;
using core::ChannelNetwork;
using core::from_units;
using core::PaymentRequest;

PaymentRequest request(core::NodeId src, core::NodeId dst, double units) {
  PaymentRequest req;
  req.src = src;
  req.dst = dst;
  req.amount = from_units(units);
  return req;
}

std::vector<Amount> uniform_caps(const graph::Graph& g, double units) {
  return std::vector<Amount>(g.edge_count(), from_units(units));
}

void check_choices_valid(const graph::Graph& g, const ChannelNetwork& net,
                         const std::vector<RouteChoice>& choices,
                         core::NodeId src, core::NodeId dst) {
  for (const RouteChoice& c : choices) {
    EXPECT_TRUE(c.path.valid(g));
    EXPECT_EQ(c.path.source, src);
    EXPECT_EQ(c.path.destination(g), dst);
    EXPECT_GT(c.amount, 0);
    EXPECT_LE(c.amount, net.path_available(c.path));
  }
}

TEST(ShortestPathScheme, RoutesAlongShortestPath) {
  const graph::Graph g = graph::topology::make_fig4_example();
  const auto caps = uniform_caps(g, 100);
  ChannelNetwork net(g, caps);
  ShortestPathScheme s;
  s.prepare(g, caps, fluid::PaymentGraph(5), 0.5);
  const auto choices = s.route(request(0, 3, 20), from_units(20), net, 0.0);
  ASSERT_EQ(choices.size(), 1u);
  EXPECT_EQ(choices[0].path.length(), 2u);  // 0-1-3
  EXPECT_EQ(choices[0].amount, from_units(20));
  check_choices_valid(g, net, choices, 0, 3);
}

TEST(ShortestPathScheme, ClampsToAvailable) {
  const graph::Graph g = graph::topology::make_line(2);
  const auto caps = uniform_caps(g, 100);  // 50 each side
  ChannelNetwork net(g, caps);
  ShortestPathScheme s;
  s.prepare(g, caps, fluid::PaymentGraph(2), 0.5);
  const auto choices = s.route(request(0, 1, 80), from_units(80), net, 0.0);
  ASSERT_EQ(choices.size(), 1u);
  EXPECT_EQ(choices[0].amount, from_units(50));
}

TEST(MaxFlowScheme, SucceedsAcrossMultiplePaths) {
  const graph::Graph g = graph::topology::make_ring(4);
  ChannelNetwork net(g, uniform_caps(g, 100));  // 50 per direction
  MaxFlowScheme s;
  // 80 > any single path (50) but <= the 100 max-flow.
  const auto choices = s.route(request(0, 2, 80), from_units(80), net, 0.0);
  ASSERT_GE(choices.size(), 2u);
  Amount total = 0;
  for (const RouteChoice& c : choices) total += c.amount;
  EXPECT_EQ(total, from_units(80));
  check_choices_valid(g, net, choices, 0, 2);
}

TEST(MaxFlowScheme, FailsWhenMaxFlowShort) {
  const graph::Graph g = graph::topology::make_ring(4);
  ChannelNetwork net(g, uniform_caps(g, 100));
  MaxFlowScheme s;
  EXPECT_TRUE(s.route(request(0, 2, 150), from_units(150), net, 0.0).empty());
  EXPECT_TRUE(s.atomic());
}

TEST(WaterfillingScheme, SplitsTowardsWidestPaths) {
  // Ring of 4: two disjoint paths 0->2. Drain one side first and check
  // the allocation goes to the fuller path.
  const graph::Graph g = graph::topology::make_ring(4);
  const auto caps = uniform_caps(g, 100);
  ChannelNetwork net(g, caps);
  WaterfillingScheme s(4);
  s.prepare(g, caps, fluid::PaymentGraph(4), 0.5);
  // Drain edge 0 (path 0-1-2) by 30 units.
  auto rl = net.lock_route(
      graph::Path{0, {graph::forward_arc(0)}}, from_units(30),
      core::hash_preimage(1));
  ASSERT_TRUE(rl);
  const auto choices = s.route(request(0, 2, 40), from_units(40), net, 0.0);
  ASSERT_FALSE(choices.empty());
  check_choices_valid(g, net, choices, 0, 2);
  Amount total = 0;
  Amount on_drained = 0;
  for (const RouteChoice& c : choices) {
    total += c.amount;
    if (!c.path.arcs.empty() && graph::edge_of(c.path.arcs[0]) == 0) {
      on_drained += c.amount;
    }
  }
  EXPECT_EQ(total, from_units(40));
  // The fuller (undrained) path gets strictly more.
  EXPECT_LT(on_drained, total - on_drained);
}

TEST(WaterfillingScheme, NoPathsMeansNoChoices) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  const std::vector<Amount> caps{from_units(100)};
  ChannelNetwork net(g, caps);
  WaterfillingScheme s(4);
  s.prepare(g, caps, fluid::PaymentGraph(3), 0.5);
  EXPECT_TRUE(s.route(request(0, 2, 10), from_units(10), net, 0.0).empty());
}

TEST(SpiderLpScheme, WeightsFollowLpAndStarvedPairsGetNothing) {
  const graph::Graph g = graph::topology::make_fig4_example();
  const auto caps = uniform_caps(g, 1000);
  ChannelNetwork net(g, caps);
  SpiderLpScheme s(4);
  s.prepare(g, caps, fluid::fig4_payment_graph(), 0.5);
  // Pair (1,3) [paper 2->4] is in the circulation: routed.
  const auto c13 = s.route(request(1, 3, 10), from_units(10), net, 0.0);
  EXPECT_FALSE(c13.empty());
  Amount total = 0;
  for (const RouteChoice& c : c13) total += c.amount;
  EXPECT_EQ(total, from_units(10));
  check_choices_valid(g, net, c13, 1, 3);
  // All-DAG pairs into node 5 get zero LP rate: never attempted (§6.2).
  EXPECT_TRUE(s.route(request(0, 4, 10), from_units(10), net, 0.0).empty());
}

TEST(SpiderPrimalDualScheme, ProducesWorkingWeights) {
  const graph::Graph g = graph::topology::make_fig4_example();
  const auto caps = uniform_caps(g, 1000);
  ChannelNetwork net(g, caps);
  SpiderPrimalDualScheme s(4, 6000);
  s.prepare(g, caps, fluid::fig4_payment_graph(), 0.5);
  const auto choices = s.route(request(1, 3, 10), from_units(10), net, 0.0);
  EXPECT_FALSE(choices.empty());
  check_choices_valid(g, net, choices, 1, 3);
}

TEST(SilentWhispers, PicksHighDegreeLandmarksAndRoutesThrough) {
  const graph::Graph g = graph::topology::make_isp32();
  const auto caps = uniform_caps(g, 100);
  ChannelNetwork net(g, caps);
  SilentWhispersScheme s(3);
  s.prepare(g, caps, fluid::PaymentGraph(32), 0.5);
  ASSERT_EQ(s.landmarks().size(), 3u);
  for (const graph::NodeId lm : s.landmarks()) {
    EXPECT_LT(lm, 8u);  // cores are the high-degree tier
  }
  const auto choices = s.route(request(10, 25, 30), from_units(30), net, 0.0);
  ASSERT_FALSE(choices.empty());
  Amount total = 0;
  for (const RouteChoice& c : choices) total += c.amount;
  EXPECT_EQ(total, from_units(30));
  check_choices_valid(g, net, choices, 10, 25);
}

TEST(SilentWhispers, AtomicFailureWhenLandmarkPathsDry) {
  const graph::Graph g = graph::topology::make_star(5);
  const auto caps = uniform_caps(g, 100);  // 50 outbound per leaf
  ChannelNetwork net(g, caps);
  SilentWhispersScheme s(2);
  s.prepare(g, caps, fluid::PaymentGraph(5), 0.5);
  // Any 1->2 route crosses the hub; 80 > 50 bottleneck => atomic fail.
  EXPECT_TRUE(s.route(request(1, 2, 80), from_units(80), net, 0.0).empty());
}

TEST(SpeedyMurmurs, TreeDistanceIsAMetricOnTrees) {
  const graph::Graph g = graph::topology::make_isp32();
  SpeedyMurmursScheme s(3, 7);
  s.prepare(g, uniform_caps(g, 100), fluid::PaymentGraph(32), 0.5);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(s.tree_distance(t, 5, 5), 0u);
    EXPECT_EQ(s.tree_distance(t, 3, 9), s.tree_distance(t, 9, 3));
    // Triangle inequality spot check.
    EXPECT_LE(s.tree_distance(t, 3, 9),
              s.tree_distance(t, 3, 20) + s.tree_distance(t, 20, 9));
  }
}

TEST(SpeedyMurmurs, RoutesAndRespectsBalances) {
  const graph::Graph g = graph::topology::make_isp32();
  const auto caps = uniform_caps(g, 100);
  ChannelNetwork net(g, caps);
  SpeedyMurmursScheme s(3, 7);
  s.prepare(g, caps, fluid::PaymentGraph(32), 0.5);
  const auto choices = s.route(request(12, 28, 30), from_units(30), net, 0.0);
  ASSERT_EQ(choices.size(), 3u);  // one share per tree
  Amount total = 0;
  for (const RouteChoice& c : choices) total += c.amount;
  EXPECT_EQ(total, from_units(30));
  check_choices_valid(g, net, choices, 12, 28);
}

TEST(SpeedyMurmurs, FailsWhenSharesDontFit) {
  const graph::Graph g = graph::topology::make_line(2);
  const auto caps = uniform_caps(g, 100);  // 50 per direction
  ChannelNetwork net(g, caps);
  SpeedyMurmursScheme s(1, 3);
  s.prepare(g, caps, fluid::PaymentGraph(2), 0.5);
  EXPECT_TRUE(s.route(request(0, 1, 80), from_units(80), net, 0.0).empty());
  EXPECT_FALSE(s.route(request(0, 1, 40), from_units(40), net, 0.0).empty());
}

TEST(StaleWaterfilling, UsesSnapshotUntilRefresh) {
  const graph::Graph g = graph::topology::make_ring(4);
  const auto caps = uniform_caps(g, 100);
  ChannelNetwork net(g, caps);
  StaleWaterfillingScheme s(4, /*refresh_interval=*/10.0);
  s.prepare(g, caps, fluid::PaymentGraph(4), 0.5);
  // Probe at t=0: both 0->2 paths report 50.
  const auto first = s.route(request(0, 2, 10), from_units(10), net, 0.0);
  ASSERT_FALSE(first.empty());
  // Drain edge 0 heavily; a live scheme would now avoid it.
  auto rl = net.lock_route(graph::Path{0, {graph::forward_arc(0)}},
                           from_units(45), core::hash_preimage(1));
  ASSERT_TRUE(rl);
  // At t=1 (inside the interval) the scheme still believes the old
  // snapshot and splits over both paths; clamping keeps it feasible.
  const auto stale = s.route(request(0, 2, 40), from_units(40), net, 1.0);
  check_choices_valid(g, net, stale, 0, 2);
  // After the refresh interval it re-probes and shifts to the full path.
  const auto fresh = s.route(request(0, 2, 40), from_units(40), net, 11.0);
  Amount on_drained = 0, total = 0;
  for (const RouteChoice& c : fresh) {
    total += c.amount;
    if (!c.path.arcs.empty() && graph::edge_of(c.path.arcs[0]) == 0) {
      on_drained += c.amount;
    }
  }
  EXPECT_GT(total, 0);
  EXPECT_LT(on_drained, total - on_drained);
}

TEST(Factory, CreatesEverySchemeAndRejectsUnknown) {
  for (const std::string& name : all_scheme_names()) {
    const auto s = make_scheme(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_EQ(make_scheme("spider-primal-dual")->name(), "spider-primal-dual");
  EXPECT_EQ(make_scheme("spider-waterfilling-stale")->name(),
            "spider-waterfilling-stale");
  EXPECT_THROW((void)make_scheme("nope"), std::invalid_argument);
}

TEST(PathCache, CachesAndValidates) {
  const graph::Graph g = graph::topology::make_isp32();
  PathCache cache(&g, PathMode::kEdgeDisjoint, 4);
  const auto& p1 = cache.paths(3, 29);
  EXPECT_FALSE(p1.empty());
  EXPECT_EQ(cache.cached_pairs(), 1u);
  const auto& p2 = cache.paths(3, 29);
  EXPECT_EQ(&p1, &p2);  // same cached object
  PathCache unbound;
  EXPECT_THROW((void)unbound.paths(0, 1), std::logic_error);
}

}  // namespace
}  // namespace spider::schemes
