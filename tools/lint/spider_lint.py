#!/usr/bin/env python3
"""spider_lint: determinism & shared-state static checks for Spider C++.

The simulator's published numbers rest on a contract the compiler cannot
see: same-seed runs are bit-for-bit deterministic, no code path depends
on iteration order, wall-clock time, or platform randomness, and -- the
PDES refactor's precondition -- no shared mutable state exists outside
the annotated worker-pool internals. This linter enforces the mechanical
half of that contract over `src/`, `bench/`, and `examples/` (see
tools/lint/lint_rules.md for the rule catalogue and DESIGN.md §7/§11 for
the policy).

Two layers run on every invocation:

  * line-local rules (unordered-container, nondet-random, wall-clock,
    float-accum, ptr-key-order, hot-loop-alloc, fault-sampling), regex
    over one line at a time;
  * multi-pass rules (mutable-global, rng-seed, runner-capture,
    guarded-by) that first build a lightweight repo-wide symbol index
    (brace-scope map per file, GUARDED_BY annotations, Runner-typed
    variables) and then check each file against it. The index summary
    can be cached across runs with --index-cache.

Zero dependencies beyond the Python 3 standard library; regex-driven on
purpose -- it runs in well under a second over the whole tree and never
needs a compile database.

Usage:
    tools/lint/spider_lint.py src bench examples
    tools/lint/spider_lint.py --all
    tools/lint/spider_lint.py --all --json findings.json
    tools/lint/spider_lint.py --all --fix-suggestions
    tools/lint/spider_lint.py --audit-suppressions src bench examples
    tools/lint/spider_lint.py --list-rules
    tools/lint/spider_lint.py file.cpp another.hpp

Exit status: 0 when clean, 1 when any finding fired, 2 on usage errors.
--audit-suppressions always exits 0: it is an inventory, not a gate.

Suppression: append `// spider-lint: allow(<rule>)` to the offending
line, or put it alone on the line directly above. Every suppression
should carry a human-readable justification next to it;
--audit-suppressions lists them all and calls out bare markers.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Iterator, NamedTuple

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

# Roots --all expands to, relative to the repository root (two levels up
# from this file). tools/lint/tests/ is deliberately absent: fixtures
# exist to fire.
DEFAULT_ROOTS = ("src", "bench", "examples")

ALLOW_RE = re.compile(r"//\s*spider-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
# `for (... : expr)` -- captures the range expression for identifier lookup.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;]*?:\s*([^)]+)\)")
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# Variable or member names declared with an unordered container type on
# the same line: `std::unordered_map<K, V> name;` / `... name_;`
UNORDERED_VAR_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*[;{=(]"
)
# Fault-injection vocabulary (src/faults/ public types).
FAULT_TYPE_RE = re.compile(r"\bFault(?:Plan|Profile|Event|Injector|Kind)\b")
# Opt-in marker for the hot-loop allocation rule: files whose functions
# sit on the per-query path of the simulators declare themselves with
# `// spider-lint: hot-path-file` and are then checked for per-call
# container construction.
HOT_PATH_MARKER_RE = re.compile(r"//\s*spider-lint:\s*hot-path-file\b")
# A named container variable constructed with arguments:
# `std::vector<char> seen(n, 0);`. Qualified definitions
# (`std::vector<Path> PathFinder::yen(...)`) never match (the `::`
# breaks the name-then-paren adjacency); unqualified function
# signatures are excluded below by their parameter-list shape.
HOT_ALLOC_RE = re.compile(
    r"\b(?:std::)?(?:vector|deque|list|set|map|multiset|multimap"
    r"|unordered_set|unordered_map|priority_queue|string)\s*"
    r"<[^;(){}]*>\s+[A-Za-z_]\w*\s*\(([^)]*)"
)
# Opt-in marker for the shard-state rule: simulator translation units
# whose router/channel state is partitioned across PDES shards
# (DESIGN.md §12) declare themselves with
# `// spider-lint: shard-state-file`; every mutation of that state must
# then go through the owning-shard accessors.
SHARD_STATE_MARKER_RE = re.compile(r"//\s*spider-lint:\s*shard-state-file\b")
# Mutating methods of core::Router / core::Channel (the sharded state).
# Reads are free; these change queue contents, HTLC holds, or marking
# state and therefore must happen in the owning shard's execution slice.
SHARD_MUTATORS = (
    "push_local|pop_local|drop_expired|offer_htlc|settle_htlc|fail_htlc"
    "|configure_marking|observe_delay_local"
)
# The sanctioned access path: `owned_router(v)` / `owned_channel(e)`
# (assert ownership, then mutate).
OWNED_ACCESSOR_RE = re.compile(r"\bowned_(?:router|channel)\s*\(")
# A reference bound to an accessor result -- mutations through the bound
# name are sanctioned for the rest of the file (the linter does not
# track scopes; rebinding the same name to raw state elsewhere defeats
# it, which code review owns).
OWNED_BIND_RE = re.compile(
    r"\b(?:(?:core::)?(?:Router|Channel)|auto)\s*&\s*([A-Za-z_]\w*)\s*=\s*"
    r"owned_(?:router|channel)\s*\("
)
# A mutator call, with its receiver when written on the same line:
# `name.push_local(`, `name[i]->drop_expired(`, or a bare/wrapped
# `.offer_htlc(` continuation (receiver group absent).
SHARD_CALL_RE = re.compile(
    r"(?:\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*)?"
    r"\b(?:" + SHARD_MUTATORS + r")\s*\("
)
# Construction of a std RNG engine or distribution.
STD_RNG_RE = re.compile(
    r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w+|knuth_b"
    r"|(?:uniform_(?:int|real)|exponential|poisson|normal|lognormal"
    r"|bernoulli|geometric|binomial|discrete)_distribution)\b"
)
# A std RNG *engine* (not distribution) constructed into a named
# variable. Group 1 = engine type, 2 = variable, 3 = open delimiter.
RNG_ENGINE_CTOR_RE = re.compile(
    r"\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w+|knuth_b)\s+([A-Za-z_]\w*)\s*([;({])"
)
# Seed expressions that tie an engine to the config/seed-derivation
# chain. Anything else is an ad-hoc stream.
SEED_FLOW_RE = re.compile(r"derive_seed|seed|Seed|SEED|salt")

# -- multi-pass regexes ------------------------------------------------

# `<type> <field> GUARDED_BY(<mutex>)` annotation on a declaration.
GUARDED_BY_RE = re.compile(r"\b([A-Za-z_]\w*)\s+GUARDED_BY\s*\(\s*(\w+)\s*\)")
# RAII lock scopes over std or spider mutex wrappers.
LOCK_RAII_RE = re.compile(
    r"\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock)\s*"
    r"(?:<[^;>]*>)?\s+\w+\s*[({]\s*(\w+)"
    r"|\b(?:core::)?MutexLock\s+\w+\s*[({]\s*&?\s*(\w+)"
)
EXPLICIT_LOCK_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*lock\s*\(\s*\)")
EXPLICIT_UNLOCK_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*unlock\s*\(\s*\)")
# Member-style writes (house style: trailing-underscore members, or
# explicit this->). Group: the field name.
MEMBER_WRITE_RE = re.compile(
    r"(?:\+\+|--)\s*(?:this\s*->\s*)?([A-Za-z_]\w*_)\b"
    r"|\b(?:this\s*->\s*)?([A-Za-z_]\w*_)\s*(?:\+\+|--)"
    r"|\b(?:this\s*->\s*)?([A-Za-z_]\w*_)\s*(?:[+\-*/|&^]|<<|>>)?=(?!=)"
)
# Variables declared (anywhere in the indexed tree) with type
# exp::Runner / Runner, by value or reference. Both alternations below
# capture the variable name.
RUNNER_VAR_RE = re.compile(
    r"\b(?:exp::)?Runner\s*&?\s+([A-Za-z_]\w*)\s*[;({=,)]"
)
# A parallel fan-out call: `<receiver>.map(` / `<receiver>.for_each(`.
RUNNER_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(map|for_each)\s*\(")
# Static / thread_local storage.
STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?(static|thread_local)\b")
CONST_QUAL_RE = re.compile(r"\b(?:const|constexpr|constinit)\b")
# One parameter declaration: type tokens then a name (defaults already
# stripped), or an unnamed `T&` / `T*`. A constructor-argument
# expression (`7`, `seed ^ 3`, `g, src`) never has this shape.
PARAM_DECL_RE = re.compile(
    r"^(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<.*>)?[\s&*\]>]+&?\s*[A-Za-z_]\w*$"
    r"|^(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<.*>)?\s*[&*]+$"
    r"|^void$"
)


def split_top_level_commas(s: str) -> list[str]:
    """Splits on commas outside (), <>, [] nesting."""
    out: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in s:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    out.append("".join(cur))
    return out


def looks_like_params(args: str) -> bool:
    """True when a parenthesized list reads as parameter declarations
    rather than constructor-argument expressions."""
    args = args.strip()
    if args == "":
        return True
    for piece in split_top_level_commas(args):
        piece = re.sub(r"=.*$", "", piece.strip()).strip()  # drop defaults
        if not PARAM_DECL_RE.match(piece):
            return False
    return True

# Known-safe shared state. Every entry is (path suffix, identifier,
# why). Keep this list short: the PDES contract (DESIGN.md §11) wants
# zero mutable globals, and an allowlist entry is a debt the PDES
# refactor must pay down.
MUTABLE_GLOBAL_ALLOWLIST: list[tuple[str, str, str]] = []


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str
    suggestion: str = ""

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule(NamedTuple):
    name: str
    summary: str


RULES = [
    Rule(
        "unordered-container",
        "std::unordered_{map,set} in deterministic code; allowlist only "
        "pure-lookup uses (no iteration), or switch to a sorted/dense "
        "container",
    ),
    Rule(
        "unordered-iter",
        "range-for over a std::unordered_{map,set} variable: iteration "
        "order is implementation-defined and breaks same-seed determinism",
    ),
    Rule(
        "nondet-random",
        "std::random_device / rand() / srand() / random_shuffle: "
        "nondeterministic or global-state randomness; seed a local "
        "std::mt19937_64 from config instead",
    ),
    Rule(
        "wall-clock",
        "time()/system_clock/gettimeofday/localtime in simulation code; "
        "simulation time comes from the EventQueue, wall time only from "
        "std::chrono::steady_clock in runner/bench timing fields",
    ),
    Rule(
        "float-accum",
        "`float` declaration: metrics and balances accumulate in double "
        "or integer milli-units; float narrows silently",
    ),
    Rule(
        "ptr-key-order",
        "ordered container keyed by a pointer: pointer order depends on "
        "the allocator and varies run to run",
    ),
    Rule(
        "hot-loop-alloc",
        "container constructed per call in a `// spider-lint: "
        "hot-path-file`: hoist it into reusable scratch (graph::"
        "PathFinder style) so hot query loops do not allocate",
    ),
    Rule(
        "shard-state",
        "router/channel mutation bypassing the owning-shard accessor in "
        "a `// spider-lint: shard-state-file`: under the PDES engine "
        "(DESIGN.md §12) state writes are legal only in the owning "
        "shard's execution slice; route them through owned_router()/"
        "owned_channel()",
    ),
    Rule(
        "fault-sampling",
        "ad-hoc RNG next to fault types outside src/faults/: fault "
        "schedules must come from faults::generate_plan (per-kind salted "
        "streams), never from a local engine",
    ),
    Rule(
        "mutable-global",
        "mutable namespace-scope/static/thread_local state: shared "
        "mutable state is the core PDES hazard; pass state through "
        "configs/locals or allowlist with a justification",
    ),
    Rule(
        "rng-seed",
        "RNG engine whose seed does not flow from derive_seed or a "
        "config seed: default-constructed or literal-seeded engines "
        "break the one-seed-per-trial discipline",
    ),
    Rule(
        "runner-capture",
        "lambda passed to exp::Runner::map/for_each mutates a "
        "by-reference capture without indexing by the chunk parameter: "
        "chunks race on it and byte-identity across thread counts dies",
    ),
    Rule(
        "guarded-by",
        "field assigned under a lock scope but not declared "
        "GUARDED_BY(<mutex>): the clang thread-safety analysis cannot "
        "see it (core/thread_annotations.hpp)",
    ),
]

RULE_NAMES = {r.name for r in RULES}

# Rules whose findings come from the index-backed passes, not the
# per-line scan.
MULTI_PASS_RULES = {"mutable-global", "rng-seed", "runner-capture", "guarded-by"}

SUGGESTIONS = {
    "shard-state": "mutate through the accessor -- "
    "`owned_router(v).push_local(...)` -- or bind a reference first: "
    "`core::Router& r = owned_router(v);`",
    "mutable-global": "move the state into a config/struct passed by "
    "value, or add `// spider-lint: allow(mutable-global) <why safe>`",
    "rng-seed": "seed from the trial chain: "
    "`std::mt19937_64 rng(exp::derive_seed(base_seed, index));` or a "
    "config seed, or add `// spider-lint: allow(rng-seed) <why safe>`",
    "runner-capture": "write only through your own slot "
    "(`out[i] = ...`), or make the capture const; if the write is "
    "provably chunk-private add "
    "`// spider-lint: allow(runner-capture) <why safe>`",
    "guarded-by": "annotate the declaration: "
    "`<type> <field> GUARDED_BY(<mutex>);` "
    "(include core/thread_annotations.hpp)",
}


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal *contents* so rule
    regexes never fire on prose. Crude (no multi-line /* */ tracking
    across lines with code), but block comments in this codebase never
    share a line with code."""
    out: list[str] = []
    i = 0
    n = len(line)
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a line comment
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def is_allowed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    """True if line `lineno` (0-based) carries or inherits an
    allow(<rule>) suppression (same line or the line above)."""
    if rule in allowed_rules(raw_lines[lineno]):
        return True
    if lineno > 0:
        above = raw_lines[lineno - 1].strip()
        if above.startswith("//") and rule in allowed_rules(above):
            return True
    return False


# -- scope map ---------------------------------------------------------

# Brace-scope kinds. "namespace" covers both the file's top level and
# named/anonymous namespaces -- both are namespace scope in C++.
# "class" covers class/struct/union/enum bodies; "function" covers
# function bodies, lambdas, and control-flow blocks inside them;
# "init" covers brace initializers.
KIND_NAMESPACE = "namespace"
KIND_CLASS = "class"
KIND_FUNCTION = "function"
KIND_INIT = "init"

CLASS_HEAD_RE = re.compile(r"\b(?:class|struct|union|enum)\b[^;=()]*$")
NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\b")


def classify_head(head: str, parent: str) -> str:
    """Classifies the brace that `head` (text since the last ; { })
    opens."""
    stripped = head.strip()
    if NAMESPACE_HEAD_RE.search(stripped) and "(" not in stripped:
        return KIND_NAMESPACE
    if CLASS_HEAD_RE.search(stripped):
        return KIND_CLASS
    if parent in (KIND_FUNCTION,):
        return KIND_FUNCTION  # control flow / nested block / lambda
    if "=" in stripped and not stripped.rstrip().endswith(")"):
        return KIND_INIT  # brace initializer `T x = {...}`
    if ")" in stripped:
        return KIND_FUNCTION  # `ret name(args) {`, `if (...) {`
    if stripped == "" and parent == KIND_INIT:
        return KIND_INIT
    # `T x{...}` direct-init, `extern "C" {`, unknown -- treat brace
    # initializers (no parens, parent not function) as init at class /
    # namespace scope, which is the conservative choice for statics.
    if parent in (KIND_NAMESPACE, KIND_CLASS) and stripped and "[" not in stripped:
        return KIND_INIT
    return parent


class ScopeMap:
    """Per-line scope kind + brace depth, from a single forward pass."""

    def __init__(self, code_lines: list[str]):
        self.kind_at: list[str] = []  # scope kind at the START of each line
        self.depth_at: list[int] = []  # brace depth at the START of each line
        stack: list[str] = []
        head = ""
        for code in code_lines:
            self.kind_at.append(stack[-1] if stack else KIND_NAMESPACE)
            self.depth_at.append(len(stack))
            for ch in code:
                if ch == "{":
                    stack.append(classify_head(head, stack[-1] if stack else KIND_NAMESPACE))
                    head = ""
                elif ch == "}":
                    if stack:
                        stack.pop()
                    head = ""
                elif ch == ";":
                    head = ""
                else:
                    head += ch
            head += " "


# -- symbol index ------------------------------------------------------


class FileSummary(NamedTuple):
    """What the cross-TU passes need to know about one file."""

    guarded_fields: list[str]  # field names annotated GUARDED_BY(...)
    runner_vars: list[str]  # variables declared with type (exp::)Runner


def summarize_file(code_lines: list[str]) -> FileSummary:
    guarded: list[str] = []
    runner_vars: list[str] = []
    for code in code_lines:
        for m in GUARDED_BY_RE.finditer(code):
            guarded.append(m.group(1))
        # Skip the macro definition itself and ctor/call sites; a
        # declaration line is `Runner name...` / `Runner& name...`.
        for m in RUNNER_VAR_RE.finditer(code):
            runner_vars.append(m.group(1))
    return FileSummary(sorted(set(guarded)), sorted(set(runner_vars)))


class SymbolIndex:
    """Repo-wide facts the per-file passes check against. Built from
    every file handed to the linter; optionally cached (keyed on
    mtime+size) so a warm CI run skips re-summarizing unchanged
    files."""

    def __init__(self) -> None:
        self.guarded_fields: set[str] = set()
        self.runner_vars: set[str] = {"runner", "runner_"}  # house names
        self.cache: dict[str, dict] = {}
        self.cache_dirty = False

    def load_cache(self, path: str) -> None:
        try:
            with open(path, encoding="utf-8") as fh:
                self.cache = json.load(fh)
        except (OSError, ValueError):
            self.cache = {}

    def save_cache(self, path: str) -> None:
        if not self.cache_dirty:
            return
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(self.cache, fh)
        except OSError as e:
            print(f"spider_lint: cannot write index cache {path}: {e}",
                  file=sys.stderr)

    def add_file(self, path: str, code_lines: list[str] | None) -> None:
        """Folds one file into the index. `code_lines` may be None when
        the caller wants cache-only resolution (it is re-read on miss)."""
        key = os.path.abspath(path)
        try:
            st = os.stat(path)
            stamp = [st.st_mtime_ns, st.st_size]
        except OSError:
            stamp = [0, 0]
        entry = self.cache.get(key)
        if entry is not None and entry.get("stamp") == stamp:
            summary = FileSummary(entry["guarded"], entry["runner_vars"])
        else:
            if code_lines is None:
                try:
                    with open(path, encoding="utf-8") as fh:
                        text = fh.read()
                except OSError:
                    return
                code_lines = [strip_comments_and_strings(l)
                              for l in text.splitlines()]
            summary = summarize_file(code_lines)
            self.cache[key] = {
                "stamp": stamp,
                "guarded": summary.guarded_fields,
                "runner_vars": summary.runner_vars,
            }
            self.cache_dirty = True
        self.guarded_fields.update(summary.guarded_fields)
        self.runner_vars.update(summary.runner_vars)


# -- per-line linter (layer 1) ----------------------------------------


class FileLinter:
    def __init__(self, path: str, text: str):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code_lines = [strip_comments_and_strings(l) for l in self.raw_lines]
        self.findings: list[Finding] = []
        # Names of variables/members declared with unordered container
        # types anywhere in this file (single pass, pre-collected so a
        # member declared below its use is still caught).
        self.unordered_vars: set[str] = set()
        for code in self.code_lines:
            for m in UNORDERED_VAR_RE.finditer(code):
                self.unordered_vars.add(m.group(1))
        # Fault sampling is a whole-file condition: the file talks about
        # fault types AND rolls its own RNG. Inside src/faults/ the
        # seeded generator is exactly where that randomness belongs.
        norm = path.replace(os.sep, "/")
        self.in_faults_dir = "/faults/" in norm or norm.startswith("faults/")
        self.mentions_fault_types = any(
            FAULT_TYPE_RE.search(code) for code in self.code_lines
        )
        # Hot-path files opt into the per-call allocation rule via a
        # marker comment (searched raw: the marker IS a comment).
        self.hot_path_file = any(
            HOT_PATH_MARKER_RE.search(raw) for raw in self.raw_lines
        )
        # Shard-state files opt into the owning-shard accessor rule the
        # same way. References bound to accessor results anywhere in the
        # file sanction mutations through that name.
        self.shard_state_file = any(
            SHARD_STATE_MARKER_RE.search(raw) for raw in self.raw_lines
        )
        self.owned_refs: set[str] = set()
        if self.shard_state_file:
            for code in self.code_lines:
                for m in OWNED_BIND_RE.finditer(code):
                    self.owned_refs.add(m.group(1))

    def report(self, lineno: int, rule: str, message: str) -> None:
        if not is_allowed(self.raw_lines, lineno, rule):
            self.findings.append(
                Finding(self.path, lineno + 1, rule, message,
                        SUGGESTIONS.get(rule, ""))
            )

    def lint(self) -> list[Finding]:
        for i, code in enumerate(self.code_lines):
            self.check_unordered(i, code)
            self.check_random(i, code)
            self.check_wall_clock(i, code)
            self.check_float(i, code)
            self.check_ptr_key(i, code)
            self.check_hot_alloc(i, code)
            self.check_shard_state(i, code)
            self.check_fault_sampling(i, code)
        return self.findings

    def check_unordered(self, i: int, code: str) -> None:
        if UNORDERED_DECL_RE.search(code):
            self.report(
                i,
                "unordered-container",
                "std::unordered_* container in deterministic code; "
                "allowlist pure-lookup uses or use a sorted/dense container",
            )
        for m in RANGE_FOR_RE.finditer(code):
            range_expr = m.group(1)
            idents = set(IDENT_RE.findall(range_expr))
            hit = idents & self.unordered_vars
            if hit:
                self.report(
                    i,
                    "unordered-iter",
                    f"iteration over unordered container "
                    f"'{sorted(hit)[0]}': order is implementation-defined",
                )
        # .begin() on a known-unordered variable also counts as iteration
        # (std::sort(m.begin(), ...), accumulate, etc.). A bare .end() is
        # fine: `it != m.end()` is the lookup idiom, not a walk.
        for var in self.unordered_vars:
            if re.search(rf"\b{re.escape(var)}\s*\.\s*(?:begin|cbegin)\s*\(", code):
                self.report(
                    i,
                    "unordered-iter",
                    f"iterator walk over unordered container '{var}': "
                    "order is implementation-defined",
                )
                break

    def check_random(self, i: int, code: str) -> None:
        if re.search(r"\bstd::random_device\b", code):
            self.report(i, "nondet-random", "std::random_device is nondeterministic by design")
        if re.search(r"(?<![\w:.])s?rand\s*\(", code):
            self.report(
                i, "nondet-random", "rand()/srand() use hidden global state; use a seeded std::mt19937_64"
            )
        if re.search(r"\bstd::random_shuffle\b", code):
            self.report(
                i, "nondet-random", "std::random_shuffle draws from an unspecified source; use std::shuffle with a seeded engine"
            )

    def check_wall_clock(self, i: int, code: str) -> None:
        if re.search(r"\bstd::chrono::(?:system_clock|high_resolution_clock)\b", code):
            self.report(
                i,
                "wall-clock",
                "system_clock/high_resolution_clock read; use the "
                "EventQueue for sim time, steady_clock for wall timing",
            )
        if re.search(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)", code):
            self.report(i, "wall-clock", "time() reads the wall clock")
        for fn in ("gettimeofday", "clock_gettime", "localtime", "gmtime"):
            if re.search(rf"(?<![\w:.]){fn}\s*\(", code):
                self.report(i, "wall-clock", f"{fn}() reads the wall clock")
                break

    def check_float(self, i: int, code: str) -> None:
        # Declarations/parameters/casts of `float`. Identifiers like
        # `floating` or member accesses never match (word boundary).
        if re.search(r"(?<![\w.])float\b", code):
            self.report(
                i,
                "float-accum",
                "`float` in simulation code: accumulate in double or "
                "integer milli-units (Amount)",
            )

    def check_hot_alloc(self, i: int, code: str) -> None:
        # Only in files that opted in with the hot-path-file marker: a
        # container variable constructed with arguments allocates on
        # every call of the enclosing function. Parameter lists of
        # container-returning functions (`std::vector<Path> f(const
        # Graph& g, ...)`) are excluded by their `const`/`&` tokens --
        # hot-path ctor args are sizes and fill values, not references.
        if not self.hot_path_file:
            return
        m = HOT_ALLOC_RE.search(code)
        if not m:
            return
        args = m.group(1)
        if re.search(r"\bconst\b|&", args):
            return
        self.report(
            i,
            "hot-loop-alloc",
            "container constructed per call in a hot-path file; hoist "
            "into reusable scratch or allowlist with a justification",
        )

    def check_shard_state(self, i: int, code: str) -> None:
        # Only in files that opted in with the shard-state-file marker:
        # every call of a Router/Channel mutator must go through
        # owned_router()/owned_channel() -- inline on the line, via a
        # reference previously bound to an accessor result, or (for
        # wrapped calls) via an accessor on one of the two lines above.
        if not self.shard_state_file:
            return
        if OWNED_ACCESSOR_RE.search(code):
            return  # the sanctioned inline shape (or a binding line)
        for m in SHARD_CALL_RE.finditer(code):
            receiver = m.group(1)
            if receiver is not None:
                if receiver in self.owned_refs:
                    continue
            else:
                # A type token before the name means this *declares* a
                # mutator (`void push_local(int);`), not a call.
                if re.search(r"[\w>&\]]\s+$", code[:m.start()]):
                    continue
                # `.mutator(` with the receiver wrapped onto an earlier
                # line, or an unqualified call: accept when an accessor
                # appears just above, otherwise flag.
                above = " ".join(self.code_lines[max(0, i - 2):i])
                if OWNED_ACCESSOR_RE.search(above):
                    continue
            self.report(
                i,
                "shard-state",
                "router/channel state mutated without the owning-shard "
                "accessor; use owned_router()/owned_channel() so the "
                "write is pinned to the owning shard's execution slice",
            )

    def check_fault_sampling(self, i: int, code: str) -> None:
        # A file that names fault types AND constructs a std RNG engine
        # or distribution is sampling fault schedules ad hoc. All fault
        # randomness lives in faults::generate_plan, whose per-kind
        # salted streams keep schedules reproducible and independent.
        if self.in_faults_dir or not self.mentions_fault_types:
            return
        if STD_RNG_RE.search(code):
            self.report(
                i,
                "fault-sampling",
                "std RNG constructed in a file that uses fault types; "
                "derive fault schedules from faults::generate_plan, not "
                "a local engine",
            )

    def check_ptr_key(self, i: int, code: str) -> None:
        # std::map/std::set keyed by a raw pointer type: `std::map<T*, ...`
        # or `std::set<T*>`; const/qualified pointees included.
        if re.search(r"\bstd::(?:map|set|multimap|multiset)\s*<[^,>]*\*\s*[,>]", code):
            self.report(
                i,
                "ptr-key-order",
                "ordered container keyed by pointer: address order is not "
                "deterministic across runs",
            )


# -- multi-pass analyzer (layer 2) ------------------------------------


def joined_paren_expr(code_lines: list[str], lineno: int, start_col: int,
                      open_ch: str, max_lines: int = 6) -> str:
    """Returns the text inside the paren/brace opening at
    (lineno, start_col), joined across up to max_lines lines. Used for
    constructor argument lists that wrap."""
    close_ch = ")" if open_ch == "(" else "}"
    depth = 0
    out: list[str] = []
    for li in range(lineno, min(lineno + max_lines, len(code_lines))):
        text = code_lines[li]
        start = start_col if li == lineno else 0
        for ci in range(start, len(text)):
            c = text[ci]
            if c == open_ch:
                depth += 1
                if depth == 1:
                    continue
            elif c == close_ch:
                depth -= 1
                if depth == 0:
                    return "".join(out)
            if depth >= 1:
                out.append(c)
        out.append(" ")
    return "".join(out)


def find_matching_brace(code_lines: list[str], lineno: int,
                        col: int) -> tuple[int, int]:
    """Given the position of a `{`, returns (line, col) of its `}`;
    falls back to end-of-file."""
    depth = 0
    for li in range(lineno, len(code_lines)):
        text = code_lines[li]
        start = col if li == lineno else 0
        for ci in range(start, len(text)):
            if text[ci] == "{":
                depth += 1
            elif text[ci] == "}":
                depth -= 1
                if depth == 0:
                    return li, ci
    return len(code_lines) - 1, 0


# Local declarations inside a lambda body (approximate: a type-looking
# token sequence followed by a name and a terminator).
LOCAL_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;=]*>)?[&*\s]+"
    r"([A-Za-z_]\w*)\s*[;{=(]"
)
STRUCTURED_BINDING_RE = re.compile(r"\bauto\s*&?&?\s*\[([^\]]+)\]")
FOR_INIT_RE = re.compile(r"\bfor\s*\(\s*(?:const\s+)?[\w:<>]+\s*&?&?\s+(\w+)\s*[=:]")
# A mutation whose base object is `name`: assignment, compound
# assignment, increment/decrement, or a mutating method call -- possibly
# through a subscript and/or a dotted member chain (`x.field = v` and
# `x[i].field = v` both mutate `x`). Group "sub" holds the first
# subscript when the write goes through one (the sanctioned slot-write
# shape). The lookbehinds keep the match anchored at the base: a name
# preceded by `.` or `->` is a member, not the object being resolved.
LAMBDA_WRITE_RE = re.compile(
    r"(?:\+\+|--)\s*(?P<pre>[A-Za-z_]\w*)\b"
    r"|(?<!\.)(?<!>)\b(?P<name>[A-Za-z_]\w*)\s*(?:\[(?P<sub>[^\]]*)\])?"
    r"(?P<chain>(?:\s*(?:\.|->)\s*[A-Za-z_]\w*\s*(?:\[[^\]]*\])?)*)\s*"
    r"(?:(?:\+\+|--)|(?:[+\-*/|&^]|<<|>>)?=(?!=)"
    r"|(?:\.|->)\s*(?:push_back|emplace_back|emplace|insert|erase|clear"
    r"|resize|assign|merge|store)\s*\()"
)
COMPARE_GUARD_RE = re.compile(r"[<>!=]=$|[<>]$")
# Names a write match must never resolve to: keywords and builtin type
# names that the regex can pick up in declarations (`const auto [a, b]
# = ...` would otherwise "mutate" `auto`).
WRITE_NAME_KEYWORDS = frozenset(
    "auto const constexpr return if while for else switch case do new "
    "delete sizeof static this int double bool char float long short "
    "unsigned signed void true false".split()
)


class MultiPassAnalyzer:
    """Index-backed passes over one file: mutable-global, rng-seed,
    runner-capture, guarded-by."""

    def __init__(self, path: str, text: str, index: SymbolIndex):
        self.path = path
        self.index = index
        self.raw_lines = text.splitlines()
        self.code_lines = [strip_comments_and_strings(l) for l in self.raw_lines]
        self.scope = ScopeMap(self.code_lines)
        self.findings: list[Finding] = []
        norm = path.replace(os.sep, "/")
        self.basename = os.path.basename(norm)

    def report(self, lineno: int, rule: str, message: str,
               suggestion: str = "") -> None:
        if not is_allowed(self.raw_lines, lineno, rule):
            self.findings.append(
                Finding(self.path, lineno + 1, rule, message,
                        suggestion or SUGGESTIONS.get(rule, ""))
            )

    def lint(self) -> list[Finding]:
        self.pass_mutable_global()
        self.pass_rng_seed()
        self.pass_runner_capture()
        self.pass_guarded_by()
        return self.findings

    # -- rule: mutable-global -----------------------------------------

    def allowlisted_global(self, name: str) -> bool:
        norm = self.path.replace(os.sep, "/")
        return any(norm.endswith(suffix) and name == ident
                   for suffix, ident, _why in MUTABLE_GLOBAL_ALLOWLIST)

    def pass_mutable_global(self) -> None:
        for i, code in enumerate(self.code_lines):
            kind = self.scope.kind_at[i]
            m = STATIC_DECL_RE.match(code)
            if m and kind != KIND_INIT:
                self.check_static_decl(i, code, m.group(1))
            elif kind == KIND_NAMESPACE:
                self.check_namespace_decl(i, code)

    def check_static_decl(self, i: int, code: str, keyword: str) -> None:
        stmt = code.strip()
        if stmt.startswith("static_assert"):
            return
        if CONST_QUAL_RE.search(stmt):
            return  # static const / constexpr / constinit: immutable
        # `static T f(args);` / `static T f(args) {` is a function if
        # the argument list is parameter-shaped; a variable constructed
        # with arguments has expression-shaped arguments.
        paren = stmt.find("(")
        if paren != -1:
            col = code.find("(", code.find(keyword))
            args = joined_paren_expr(self.code_lines, i, col, "(")
            if looks_like_params(args):
                return  # function declaration/definition
        name_m = re.search(r"([A-Za-z_]\w*)\s*(?:[;={(]|$)", stmt[len(keyword):].lstrip())
        name = name_m.group(1) if name_m else "?"
        if self.allowlisted_global(name):
            return
        self.report(
            i,
            "mutable-global",
            f"{keyword} mutable state '{name}': shared across threads "
            "and trials; the PDES contract forbids it outside the "
            "allowlist",
        )

    def check_namespace_decl(self, i: int, code: str) -> None:
        stmt = code.strip()
        if not stmt or stmt.endswith(":"):
            return
        # A continuation line of a wrapped function signature closes
        # parens it never opened (`double delta = 1.0);`) or ends on a
        # parameter comma (`double delta = 1.0,`).
        if stmt.count(")") > stmt.count("(") or stmt.endswith(","):
            return
        # Only definitions that terminate (or assign) on this line; a
        # bare type name continuing a wrapped signature never matches.
        decl = re.match(
            r"^(?:inline\s+)?[A-Za-z_][\w:]*(?:\s*<[^;=()]*>)?[&*\s]+"
            r"([A-Za-z_]\w*)\s*(=[^=]|;|\{)",
            stmt,
        )
        if not decl:
            return
        if CONST_QUAL_RE.search(stmt):
            return
        head = stmt.split("=")[0]
        if re.match(
            r"^(?:using|typedef|class|struct|union|enum|namespace|template"
            r"|extern|friend|concept|return|case|goto|public|private"
            r"|protected)\b",
            stmt,
        ):
            return
        if "(" in head:
            return  # function declaration / definition
        name = decl.group(1)
        if self.allowlisted_global(name):
            return
        self.report(
            i,
            "mutable-global",
            f"namespace-scope mutable variable '{name}': global state "
            "breaks trial isolation and the PDES shard contract",
        )

    # -- rule: rng-seed -----------------------------------------------

    def pass_rng_seed(self) -> None:
        for i, code in enumerate(self.code_lines):
            for m in RNG_ENGINE_CTOR_RE.finditer(code):
                kind = self.scope.kind_at[i]
                if kind == KIND_CLASS and m.group(3) == ";":
                    # Member declaration: the constructor that seeds it
                    # is checked where it runs.
                    continue
                if m.group(3) == ";":
                    self.report(
                        i,
                        "rng-seed",
                        f"default-constructed std::{m.group(1)} "
                        f"'{m.group(2)}': fixed default seed, identical "
                        "across all trials; seed from derive_seed or a "
                        "config",
                    )
                    continue
                col = code.find(m.group(3), m.start())
                args = joined_paren_expr(self.code_lines, i, col, m.group(3))
                if m.group(3) == "(" and looks_like_params(args):
                    # `std::mt19937 make_engine(int run);` declares a
                    # function returning an engine, not an engine.
                    continue
                if not SEED_FLOW_RE.search(args):
                    self.report(
                        i,
                        "rng-seed",
                        f"std::{m.group(1)} '{m.group(2)}' seeded with "
                        f"'{args.strip()[:40]}': the seed does not flow "
                        "from derive_seed or a config seed",
                    )

    # -- rule: runner-capture -----------------------------------------

    def pass_runner_capture(self) -> None:
        for i, code in enumerate(self.code_lines):
            for m in RUNNER_CALL_RE.finditer(code):
                receiver = m.group(1)
                if receiver not in self.index.runner_vars:
                    continue
                self.check_runner_lambda(i, m.end())

    def check_runner_lambda(self, lineno: int, col: int) -> None:
        # Find the lambda introducer `[` within the call's argument list
        # (same or next few lines).
        for li in range(lineno, min(lineno + 3, len(self.code_lines))):
            text = self.code_lines[li]
            start = col if li == lineno else 0
            b = text.find("[", start)
            if b == -1:
                continue
            self.analyze_lambda(li, b)
            return

    def analyze_lambda(self, lineno: int, col: int) -> None:
        text = self.code_lines[lineno]
        close = text.find("]", col)
        if close == -1:
            return
        captures = text[col + 1:close]
        by_ref_all = captures.strip() == "&"
        ref_captures = set(re.findall(r"&\s*([A-Za-z_]\w*)", captures))
        value_captures = set(
            re.findall(r"(?<![&\w])([A-Za-z_]\w*)", captures)) - ref_captures
        # Parameter list.
        params: set[str] = set()
        pstart = text.find("(", close)
        if pstart != -1:
            plist = joined_paren_expr(self.code_lines, lineno, pstart, "(")
            for piece in plist.split(","):
                pm = re.search(r"([A-Za-z_]\w*)\s*$", piece.strip())
                if pm:
                    params.add(pm.group(1))
        # Body.
        bstart_line, bstart_col = lineno, text.find("{", close)
        if bstart_col == -1:
            if lineno + 1 < len(self.code_lines):
                bstart_line = lineno + 1
                bstart_col = self.code_lines[bstart_line].find("{")
            if bstart_col == -1:
                return
        bend_line, _ = find_matching_brace(self.code_lines, bstart_line,
                                           bstart_col)
        body = self.code_lines[bstart_line:bend_line + 1]
        locals_: set[str] = set(params)
        for line in body:
            dm = LOCAL_DECL_RE.match(line)
            if dm:
                locals_.add(dm.group(1))
            for sb in STRUCTURED_BINDING_RE.finditer(line):
                for nm in sb.group(1).split(","):
                    locals_.add(nm.strip().lstrip("&").strip())
            for fm in FOR_INIT_RE.finditer(line):
                locals_.add(fm.group(1))
        for off, line in enumerate(body):
            li = bstart_line + off
            for w in LAMBDA_WRITE_RE.finditer(line):
                name = w.group("pre") or w.group("name")
                if name is None or name in WRITE_NAME_KEYWORDS:
                    continue
                if name in locals_ or name in value_captures:
                    continue
                if not (by_ref_all or name in ref_captures):
                    continue
                sub = w.group("sub")
                if sub is not None and (set(IDENT_RE.findall(sub)) & params):
                    continue  # the sanctioned slot write out[i] = ...
                before = line[:w.start()].rstrip()
                if COMPARE_GUARD_RE.search(before):
                    continue
                self.report(
                    li,
                    "runner-capture",
                    f"lambda passed to Runner::map/for_each mutates "
                    f"by-reference capture '{name}' without indexing by "
                    "its chunk parameter: chunks race on it",
                )

    # -- rule: guarded-by ---------------------------------------------

    def pass_guarded_by(self) -> None:
        raii_locks: list[int] = []  # brace depths of active RAII locks
        explicit_locks: dict[str, int] = {}  # name -> depth acquired at
        depth = 0
        for i, code in enumerate(self.code_lines):
            depth = self.scope.depth_at[i]
            # Expire locks whose enclosing block closed before this
            # line: an RAII lock declared at depth d covers lines at
            # depth >= d until the block's closing brace.
            raii_locks = [d for d in raii_locks if depth >= d]
            explicit_locks = {n: d for n, d in explicit_locks.items()
                              if depth >= d}
            if LOCK_RAII_RE.search(code):
                raii_locks.append(depth)
            for m in EXPLICIT_LOCK_RE.finditer(code):
                explicit_locks[m.group(1)] = depth
            in_lock = bool(raii_locks) or bool(explicit_locks)
            if in_lock:
                self.check_guarded_writes(i, code)
            for m in EXPLICIT_UNLOCK_RE.finditer(code):
                explicit_locks.pop(m.group(1), None)

    def check_guarded_writes(self, i: int, code: str) -> None:
        for m in MEMBER_WRITE_RE.finditer(code):
            name = m.group(1) or m.group(2) or m.group(3)
            if name is None:
                continue
            if name in self.index.guarded_fields:
                continue
            before = code[:m.start()].rstrip()
            if COMPARE_GUARD_RE.search(before):
                continue
            self.report(
                i,
                "guarded-by",
                f"field '{name}' assigned under a lock scope but not "
                "declared GUARDED_BY(<mutex>); clang -Wthread-safety "
                "cannot check it",
                suggestion=f"declare `... {name} GUARDED_BY(<mutex>);` "
                "at the field declaration "
                "(core/thread_annotations.hpp)",
            )


# -- suppression audit -------------------------------------------------


def audit_suppressions(paths: list[str]) -> int:
    """Lists every `spider-lint: allow(...)` marker with its rationale.
    A marker whose line (or marker comment) carries no prose beyond the
    rule list is flagged as NO RATIONALE. Always exits 0."""
    rows: list[tuple[str, int, str, str]] = []
    for path in iter_cpp_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            continue
        for i, raw in enumerate(lines):
            m = ALLOW_RE.search(raw)
            if not m:
                continue
            rules = m.group(1)
            rationale = raw[m.end():].strip()
            if not rationale:
                # Marker-above style: rationale may precede the marker
                # on the same comment line, or the marker suppresses the
                # line below with the why inline before it.
                head = raw[:m.start()].strip().lstrip("/").strip()
                # Drop any code before the comment; prose only.
                if "//" in raw[:m.start()]:
                    rationale = head.split("//")[-1].strip()
            rows.append((path, i + 1, rules, rationale))
    bare = 0
    for path, line, rules, rationale in rows:
        tag = rationale if rationale else "NO RATIONALE"
        if not rationale:
            bare += 1
        print(f"{path}:{line}: allow({rules}) -- {tag}")
    print(
        f"spider_lint: {len(rows)} suppression(s), {bare} without a "
        "rationale",
        file=sys.stderr,
    )
    return 0


# -- driver ------------------------------------------------------------


def iter_cpp_files(paths: list[str]) -> Iterator[str]:
    for p in paths:
        if os.path.isfile(p):
            yield p
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs.sort()
                # Never descend into build trees.
                dirs[:] = [d for d in dirs if d not in ("build", ".git")]
                for f in sorted(files):
                    if f.endswith(CPP_EXTENSIONS):
                        yield os.path.join(root, f)
        else:
            print(f"spider_lint: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)


def repo_root() -> str:
    return os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )


def write_json_report(path: str, findings: list[Finding],
                      file_count: int) -> None:
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    doc = {
        "tool": "spider_lint",
        "files_scanned": file_count,
        "finding_count": len(findings),
        "findings_by_rule": dict(sorted(by_rule.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule,
                "message": f.message,
                "suggestion": f.suggestion,
            }
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="spider_lint", description="Spider determinism & shared-state lint (see tools/lint/lint_rules.md)"
    )
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--all", action="store_true",
                    help="lint the standard tree (src bench examples) with "
                    "every pass")
    ap.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    ap.add_argument("--json", metavar="FILE",
                    help="also write a machine-readable findings report")
    ap.add_argument("--fix-suggestions", action="store_true",
                    help="print the exact annotation/suppression to add for "
                    "each finding")
    ap.add_argument("--audit-suppressions", action="store_true",
                    help="list every `spider-lint: allow` marker with its "
                    "rationale and exit 0")
    ap.add_argument("--index-cache", metavar="FILE",
                    help="cache the cross-TU symbol index here (keyed on "
                    "mtime+size) to skip re-summarizing unchanged files")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r.name}: {r.summary}")
        return 0
    paths = list(args.paths)
    if args.all:
        root = repo_root()
        paths = [os.path.join(root, d) for d in DEFAULT_ROOTS] + paths
    if not paths:
        ap.print_usage(sys.stderr)
        return 2

    if args.audit_suppressions:
        return audit_suppressions(paths)

    # Pass 1: read every file once; build the cross-TU symbol index.
    index = SymbolIndex()
    if args.index_cache:
        index.load_cache(args.index_cache)
    files: list[tuple[str, str]] = []
    for path in iter_cpp_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as e:
            print(f"spider_lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        files.append((path, text))
        index.add_file(path, [strip_comments_and_strings(l)
                              for l in text.splitlines()])
    if args.index_cache:
        index.save_cache(args.index_cache)

    # Pass 2: per-line rules + index-backed rules, file by file.
    findings: list[Finding] = []
    for path, text in files:
        findings.extend(FileLinter(path, text).lint())
        findings.extend(MultiPassAnalyzer(path, text, index).lint())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for f in findings:
        print(f)
        if args.fix_suggestions and f.suggestion:
            print(f"    fix: {f.suggestion}")
    if args.json:
        write_json_report(args.json, findings, len(files))
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"spider_lint: {len(files)} file(s), {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
