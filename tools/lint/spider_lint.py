#!/usr/bin/env python3
"""spider_lint: determinism & conservation static checks for Spider C++.

The simulator's published numbers rest on a contract the compiler cannot
see: same-seed runs are bit-for-bit deterministic and no code path
depends on iteration order, wall-clock time, or platform randomness.
This linter enforces the mechanical half of that contract over `src/`,
`bench/`, and `examples/` (see tools/lint/lint_rules.md for the rule
catalogue and DESIGN.md "Determinism contract" for the policy).

Zero dependencies beyond the Python 3 standard library; regex-driven on
purpose -- it runs in well under a second over the whole tree and never
needs a compile database.

Usage:
    tools/lint/spider_lint.py src bench examples
    tools/lint/spider_lint.py --list-rules
    tools/lint/spider_lint.py file.cpp another.hpp

Exit status: 0 when clean, 1 when any finding fired, 2 on usage errors.

Suppression: append `// spider-lint: allow(<rule>)` to the offending
line, or put it alone on the line directly above. Every suppression
should carry a human-readable justification next to it.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterator, NamedTuple

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

ALLOW_RE = re.compile(r"//\s*spider-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
# `for (... : expr)` -- captures the range expression for identifier lookup.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;]*?:\s*([^)]+)\)")
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# Variable or member names declared with an unordered container type on
# the same line: `std::unordered_map<K, V> name;` / `... name_;`
UNORDERED_VAR_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*[;{=(]"
)
# Fault-injection vocabulary (src/faults/ public types).
FAULT_TYPE_RE = re.compile(r"\bFault(?:Plan|Profile|Event|Injector|Kind)\b")
# Opt-in marker for the hot-loop allocation rule: files whose functions
# sit on the per-query path of the simulators declare themselves with
# `// spider-lint: hot-path-file` and are then checked for per-call
# container construction.
HOT_PATH_MARKER_RE = re.compile(r"//\s*spider-lint:\s*hot-path-file\b")
# A named container variable constructed with arguments:
# `std::vector<char> seen(n, 0);`. Qualified definitions
# (`std::vector<Path> PathFinder::yen(...)`) never match (the `::`
# breaks the name-then-paren adjacency); unqualified function
# signatures are excluded below by their parameter-list shape.
HOT_ALLOC_RE = re.compile(
    r"\b(?:std::)?(?:vector|deque|list|set|map|multiset|multimap"
    r"|unordered_set|unordered_map|priority_queue|string)\s*"
    r"<[^;(){}]*>\s+[A-Za-z_]\w*\s*\(([^)]*)"
)
# Construction of a std RNG engine or distribution.
STD_RNG_RE = re.compile(
    r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w+|knuth_b"
    r"|(?:uniform_(?:int|real)|exponential|poisson|normal|lognormal"
    r"|bernoulli|geometric|binomial|discrete)_distribution)\b"
)


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule(NamedTuple):
    name: str
    summary: str


RULES = [
    Rule(
        "unordered-container",
        "std::unordered_{map,set} in deterministic code; allowlist only "
        "pure-lookup uses (no iteration), or switch to a sorted/dense "
        "container",
    ),
    Rule(
        "unordered-iter",
        "range-for over a std::unordered_{map,set} variable: iteration "
        "order is implementation-defined and breaks same-seed determinism",
    ),
    Rule(
        "nondet-random",
        "std::random_device / rand() / srand() / random_shuffle: "
        "nondeterministic or global-state randomness; seed a local "
        "std::mt19937_64 from config instead",
    ),
    Rule(
        "wall-clock",
        "time()/system_clock/gettimeofday/localtime in simulation code; "
        "simulation time comes from the EventQueue, wall time only from "
        "std::chrono::steady_clock in runner/bench timing fields",
    ),
    Rule(
        "float-accum",
        "`float` declaration: metrics and balances accumulate in double "
        "or integer milli-units; float narrows silently",
    ),
    Rule(
        "ptr-key-order",
        "ordered container keyed by a pointer: pointer order depends on "
        "the allocator and varies run to run",
    ),
    Rule(
        "hot-loop-alloc",
        "container constructed per call in a `// spider-lint: "
        "hot-path-file`: hoist it into reusable scratch (graph::"
        "PathFinder style) so hot query loops do not allocate",
    ),
    Rule(
        "fault-sampling",
        "ad-hoc RNG next to fault types outside src/faults/: fault "
        "schedules must come from faults::generate_plan (per-kind salted "
        "streams), never from a local engine",
    ),
]

RULE_NAMES = {r.name for r in RULES}


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal *contents* so rule
    regexes never fire on prose. Crude (no multi-line /* */ tracking
    across lines with code), but block comments in this codebase never
    share a line with code."""
    out: list[str] = []
    i = 0
    n = len(line)
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a line comment
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


class FileLinter:
    def __init__(self, path: str, text: str):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code_lines = [strip_comments_and_strings(l) for l in self.raw_lines]
        self.findings: list[Finding] = []
        # Names of variables/members declared with unordered container
        # types anywhere in this file (single pass, pre-collected so a
        # member declared below its use is still caught).
        self.unordered_vars: set[str] = set()
        for code in self.code_lines:
            for m in UNORDERED_VAR_RE.finditer(code):
                self.unordered_vars.add(m.group(1))
        # Fault sampling is a whole-file condition: the file talks about
        # fault types AND rolls its own RNG. Inside src/faults/ the
        # seeded generator is exactly where that randomness belongs.
        norm = path.replace(os.sep, "/")
        self.in_faults_dir = "/faults/" in norm or norm.startswith("faults/")
        self.mentions_fault_types = any(
            FAULT_TYPE_RE.search(code) for code in self.code_lines
        )
        # Hot-path files opt into the per-call allocation rule via a
        # marker comment (searched raw: the marker IS a comment).
        self.hot_path_file = any(
            HOT_PATH_MARKER_RE.search(raw) for raw in self.raw_lines
        )

    def is_allowed(self, lineno: int, rule: str) -> bool:
        """True if line `lineno` (0-based) carries or inherits an
        allow(<rule>) suppression (same line or the line above)."""
        here = allowed_rules(self.raw_lines[lineno])
        if rule in here:
            return True
        if lineno > 0:
            above = self.raw_lines[lineno - 1].strip()
            if above.startswith("//") and rule in allowed_rules(above):
                return True
        return False

    def report(self, lineno: int, rule: str, message: str) -> None:
        if not self.is_allowed(lineno, rule):
            self.findings.append(Finding(self.path, lineno + 1, rule, message))

    def lint(self) -> list[Finding]:
        for i, code in enumerate(self.code_lines):
            self.check_unordered(i, code)
            self.check_random(i, code)
            self.check_wall_clock(i, code)
            self.check_float(i, code)
            self.check_ptr_key(i, code)
            self.check_hot_alloc(i, code)
            self.check_fault_sampling(i, code)
        return self.findings

    def check_unordered(self, i: int, code: str) -> None:
        if UNORDERED_DECL_RE.search(code):
            self.report(
                i,
                "unordered-container",
                "std::unordered_* container in deterministic code; "
                "allowlist pure-lookup uses or use a sorted/dense container",
            )
        for m in RANGE_FOR_RE.finditer(code):
            range_expr = m.group(1)
            idents = set(IDENT_RE.findall(range_expr))
            hit = idents & self.unordered_vars
            if hit:
                self.report(
                    i,
                    "unordered-iter",
                    f"iteration over unordered container "
                    f"'{sorted(hit)[0]}': order is implementation-defined",
                )
        # .begin() on a known-unordered variable also counts as iteration
        # (std::sort(m.begin(), ...), accumulate, etc.). A bare .end() is
        # fine: `it != m.end()` is the lookup idiom, not a walk.
        for var in self.unordered_vars:
            if re.search(rf"\b{re.escape(var)}\s*\.\s*(?:begin|cbegin)\s*\(", code):
                self.report(
                    i,
                    "unordered-iter",
                    f"iterator walk over unordered container '{var}': "
                    "order is implementation-defined",
                )
                break

    def check_random(self, i: int, code: str) -> None:
        if re.search(r"\bstd::random_device\b", code):
            self.report(i, "nondet-random", "std::random_device is nondeterministic by design")
        if re.search(r"(?<![\w:.])s?rand\s*\(", code):
            self.report(
                i, "nondet-random", "rand()/srand() use hidden global state; use a seeded std::mt19937_64"
            )
        if re.search(r"\bstd::random_shuffle\b", code):
            self.report(
                i, "nondet-random", "std::random_shuffle draws from an unspecified source; use std::shuffle with a seeded engine"
            )

    def check_wall_clock(self, i: int, code: str) -> None:
        if re.search(r"\bstd::chrono::(?:system_clock|high_resolution_clock)\b", code):
            self.report(
                i,
                "wall-clock",
                "system_clock/high_resolution_clock read; use the "
                "EventQueue for sim time, steady_clock for wall timing",
            )
        if re.search(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)", code):
            self.report(i, "wall-clock", "time() reads the wall clock")
        for fn in ("gettimeofday", "clock_gettime", "localtime", "gmtime"):
            if re.search(rf"(?<![\w:.]){fn}\s*\(", code):
                self.report(i, "wall-clock", f"{fn}() reads the wall clock")
                break

    def check_float(self, i: int, code: str) -> None:
        # Declarations/parameters/casts of `float`. Identifiers like
        # `floating` or member accesses never match (word boundary).
        if re.search(r"(?<![\w.])float\b", code):
            self.report(
                i,
                "float-accum",
                "`float` in simulation code: accumulate in double or "
                "integer milli-units (Amount)",
            )

    def check_hot_alloc(self, i: int, code: str) -> None:
        # Only in files that opted in with the hot-path-file marker: a
        # container variable constructed with arguments allocates on
        # every call of the enclosing function. Parameter lists of
        # container-returning functions (`std::vector<Path> f(const
        # Graph& g, ...)`) are excluded by their `const`/`&` tokens --
        # hot-path ctor args are sizes and fill values, not references.
        if not self.hot_path_file:
            return
        m = HOT_ALLOC_RE.search(code)
        if not m:
            return
        args = m.group(1)
        if re.search(r"\bconst\b|&", args):
            return
        self.report(
            i,
            "hot-loop-alloc",
            "container constructed per call in a hot-path file; hoist "
            "into reusable scratch or allowlist with a justification",
        )

    def check_fault_sampling(self, i: int, code: str) -> None:
        # A file that names fault types AND constructs a std RNG engine
        # or distribution is sampling fault schedules ad hoc. All fault
        # randomness lives in faults::generate_plan, whose per-kind
        # salted streams keep schedules reproducible and independent.
        if self.in_faults_dir or not self.mentions_fault_types:
            return
        if STD_RNG_RE.search(code):
            self.report(
                i,
                "fault-sampling",
                "std RNG constructed in a file that uses fault types; "
                "derive fault schedules from faults::generate_plan, not "
                "a local engine",
            )

    def check_ptr_key(self, i: int, code: str) -> None:
        # std::map/std::set keyed by a raw pointer type: `std::map<T*, ...`
        # or `std::set<T*>`; const/qualified pointees included.
        if re.search(r"\bstd::(?:map|set|multimap|multiset)\s*<[^,>]*\*\s*[,>]", code):
            self.report(
                i,
                "ptr-key-order",
                "ordered container keyed by pointer: address order is not "
                "deterministic across runs",
            )


def iter_cpp_files(paths: list[str]) -> Iterator[str]:
    for p in paths:
        if os.path.isfile(p):
            yield p
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs.sort()
                # Never descend into build trees.
                dirs[:] = [d for d in dirs if d not in ("build", ".git")]
                for f in sorted(files):
                    if f.endswith(CPP_EXTENSIONS):
                        yield os.path.join(root, f)
        else:
            print(f"spider_lint: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="spider_lint", description="Spider determinism lint (see tools/lint/lint_rules.md)"
    )
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r.name}: {r.summary}")
        return 0
    if not args.paths:
        ap.print_usage(sys.stderr)
        return 2

    findings: list[Finding] = []
    file_count = 0
    for path in iter_cpp_files(args.paths):
        file_count += 1
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as e:
            print(f"spider_lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        findings.extend(FileLinter(path, text).lint())

    for f in findings:
        print(f)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"spider_lint: {file_count} file(s), {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
