// Golden bad snippet: float accumulation in metrics-like code.
// Expected findings: float-accum on the declaration and parameter.
struct BadMetrics {
  float delivered = 0.0f;
};

double add(float x) {
  BadMetrics m;
  m.delivered += x;
  return m.delivered;
}
