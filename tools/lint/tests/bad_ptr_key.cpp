// Golden bad snippet: ordered containers keyed by raw pointers.
// Expected findings: ptr-key-order on both declarations.
#include <map>
#include <set>

struct Node {};

int count(Node* a, Node* b) {
  std::map<Node*, int> rank;
  std::set<const Node*> seen;
  rank[a] = 1;
  seen.insert(b);
  return static_cast<int>(rank.size() + seen.size());
}
