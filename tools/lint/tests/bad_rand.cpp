// Golden bad snippet: global-state and device randomness. Expected
// findings: nondet-random on all four lines.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;
  srand(42);
  int r = rand() % 6;
  std::mt19937 gen(std::random_device{}());
  return r + static_cast<int>(gen());
}
