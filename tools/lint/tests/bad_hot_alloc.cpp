// Golden fixture: per-call container construction in an opted-in
// hot-path file must fire [hot-loop-alloc].
// spider-lint: hot-path-file
#include <vector>

int query(std::size_t n) {
  std::vector<char> seen(n, 0);   // fires: allocates every call
  std::vector<int> dist(n);       // fires: allocates every call
  std::vector<int> scratch;       // clean: no ctor args (member idiom)
  scratch.push_back(static_cast<int>(seen.size()));
  return static_cast<int>(dist.size() + scratch.size());
}

// Function signatures returning containers are not allocations.
std::vector<int> make_table(const std::vector<char>& seen, int& out);

int allowed(std::size_t n) {
  // spider-lint: allow(hot-loop-alloc) fixture: one-shot setup path
  std::vector<char> mask(n, 1);
  return static_cast<int>(mask.size());
}
