// Golden bad snippet: iterating an unordered container. Expected
// findings: unordered-container (declaration) + unordered-iter (loop
// and iterator walk). Never compiled; consumed by run_tests.py only.
#include <unordered_map>

int sum_values(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int total = 0;
  for (const auto& kv : counts) {
    total += kv.second;
  }
  auto it = counts.begin();
  return total + it->second;
}
