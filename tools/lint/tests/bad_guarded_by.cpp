// Golden bad snippet: fields assigned under lock scopes (RAII and
// explicit lock()/unlock()) that are never declared GUARDED_BY. Three
// writes fire [guarded-by]; the write after unlock() is outside the
// lock scope and is this rule's job to ignore (TSan's to catch).
#include <mutex>

class Stats {
 public:
  void bump() {
    std::lock_guard<std::mutex> lk(mu_);
    ++count_;     // fires: count_ not GUARDED_BY
    total_ += 1;  // fires: total_ not GUARDED_BY
  }
  void reset() {
    mu_.lock();
    count_ = 0;  // fires: explicit lock scope
    mu_.unlock();
    epoch_ = 0;  // clean: lock already released
  }

 private:
  std::mutex mu_;
  int count_ = 0;
  int total_ = 0;
  int epoch_ = 0;
};
