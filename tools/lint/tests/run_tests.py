#!/usr/bin/env python3
"""Golden tests for tools/lint/spider_lint.py.

Each bad_*.cpp snippet must make its rule fire (nonzero exit, expected
rule names in the output); each good_*.cpp must lint clean. Also checks
the allowlist marker suppresses, that a rule-mismatched marker does not,
and that the real tree (src/ bench/ examples/) is clean — the same
invocation CI runs.

Run directly or via ctest (registered as `lint_golden`):
    python3 tools/lint/tests/run_tests.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "..", "spider_lint.py")
REPO = os.path.abspath(os.path.join(HERE, "..", "..", ".."))

failures: list[str] = []


def run_lint(*args: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def check(name: str, cond: bool, detail: str = "") -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {name}" + (f" -- {detail}" if detail and not cond else ""))
    if not cond:
        failures.append(name)


def expect_fires(snippet: str, rules: list[str]) -> None:
    path = os.path.join(HERE, snippet)
    code, out = run_lint(path)
    check(f"{snippet}: exits nonzero", code == 1, out)
    for rule in rules:
        check(f"{snippet}: fires [{rule}]", f"[{rule}]" in out, out)


def expect_clean(snippet: str) -> None:
    path = os.path.join(HERE, snippet)
    code, out = run_lint(path)
    check(f"{snippet}: exits zero", code == 0, out)


def main() -> int:
    expect_fires("bad_unordered_iter.cpp", ["unordered-container", "unordered-iter"])
    expect_fires("bad_rand.cpp", ["nondet-random"])
    expect_fires("bad_wall_clock.cpp", ["wall-clock"])
    expect_fires("bad_float.cpp", ["float-accum"])
    expect_fires("bad_ptr_key.cpp", ["ptr-key-order"])
    expect_fires("bad_fault_sampling.cpp", ["fault-sampling"])
    expect_fires("bad_hot_alloc.cpp", ["hot-loop-alloc"])
    expect_clean("good_allowlist.cpp")
    expect_clean("good_clean.cpp")
    expect_clean("good_hot_alloc_unmarked.cpp")

    # Per-line counts: bad_rand has four firing lines, bad_wall_clock three.
    code, out = run_lint(os.path.join(HERE, "bad_rand.cpp"))
    check("bad_rand.cpp: 4 findings", out.count("[nondet-random]") == 4, out)
    code, out = run_lint(os.path.join(HERE, "bad_wall_clock.cpp"))
    check("bad_wall_clock.cpp: 3 findings", out.count("[wall-clock]") == 3, out)
    check("bad_wall_clock.cpp: steady_clock line clean", ":10:" not in out, out)

    # hot-loop-alloc: exactly the two per-call constructions fire; the
    # argless declaration, the function signature, and the allow()ed
    # construction stay clean.
    code, out = run_lint(os.path.join(HERE, "bad_hot_alloc.cpp"))
    check("bad_hot_alloc.cpp: 2 findings", out.count("[hot-loop-alloc]") == 2, out)

    # The seeded generator is the sanctioned home for fault randomness:
    # the same engine+fault-type combination must NOT fire under
    # src/faults/ itself.
    code, out = run_lint(os.path.join(REPO, "src", "faults", "fault_profile.cpp"))
    check("src/faults/ exempt from fault-sampling", code == 0, out)

    # A marker for the wrong rule must NOT suppress the finding.
    with tempfile.TemporaryDirectory() as td:
        wrong = os.path.join(td, "wrong_marker.cpp")
        with open(wrong, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <cstdlib>\n"
                "int f() {\n"
                "  return rand();  // spider-lint: allow(wall-clock)\n"
                "}\n"
            )
        code, out = run_lint(wrong)
        check("wrong-rule marker does not suppress", code == 1 and "[nondet-random]" in out, out)

        # Marker on the preceding comment line suppresses.
        above = os.path.join(td, "marker_above.cpp")
        with open(above, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <cstdlib>\n"
                "int f() {\n"
                "  // spider-lint: allow(nondet-random) fixture\n"
                "  return rand();\n"
                "}\n"
            )
        code, out = run_lint(above)
        check("marker on line above suppresses", code == 0, out)

    # The real tree must be clean -- the exact invocation CI uses.
    code, out = run_lint(
        os.path.join(REPO, "src"),
        os.path.join(REPO, "bench"),
        os.path.join(REPO, "examples"),
    )
    check("repo src/ bench/ examples/ clean", code == 0, out)

    if failures:
        print(f"\n{len(failures)} golden test(s) failed", file=sys.stderr)
        return 1
    print("\nall lint golden tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
