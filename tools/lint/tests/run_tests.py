#!/usr/bin/env python3
"""Golden tests for tools/lint/spider_lint.py.

Each bad_*.cpp snippet must make its rule fire (nonzero exit, expected
rule names in the output); each good_*.cpp must lint clean. Also checks
the allowlist marker suppresses, that a rule-mismatched marker does not,
and that the real tree (src/ bench/ examples/) is clean — the same
invocation CI runs.

Run directly or via ctest (registered as `lint_golden`):
    python3 tools/lint/tests/run_tests.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "..", "spider_lint.py")
REPO = os.path.abspath(os.path.join(HERE, "..", "..", ".."))

failures: list[str] = []


def run_lint(*args: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def check(name: str, cond: bool, detail: str = "") -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {name}" + (f" -- {detail}" if detail and not cond else ""))
    if not cond:
        failures.append(name)


def expect_fires(snippet: str, rules: list[str]) -> None:
    path = os.path.join(HERE, snippet)
    code, out = run_lint(path)
    check(f"{snippet}: exits nonzero", code == 1, out)
    for rule in rules:
        check(f"{snippet}: fires [{rule}]", f"[{rule}]" in out, out)


def expect_clean(snippet: str) -> None:
    path = os.path.join(HERE, snippet)
    code, out = run_lint(path)
    check(f"{snippet}: exits zero", code == 0, out)


def main() -> int:
    expect_fires("bad_unordered_iter.cpp", ["unordered-container", "unordered-iter"])
    expect_fires("bad_rand.cpp", ["nondet-random"])
    expect_fires("bad_wall_clock.cpp", ["wall-clock"])
    expect_fires("bad_float.cpp", ["float-accum"])
    expect_fires("bad_ptr_key.cpp", ["ptr-key-order"])
    expect_fires("bad_fault_sampling.cpp", ["fault-sampling"])
    expect_fires("bad_hot_alloc.cpp", ["hot-loop-alloc"])
    expect_fires("bad_shard_state.cpp", ["shard-state"])
    expect_fires("bad_mutable_global.cpp", ["mutable-global"])
    expect_fires("bad_rng_seed.cpp", ["rng-seed"])
    expect_fires("bad_runner_capture.cpp", ["runner-capture"])
    expect_fires("bad_guarded_by.cpp", ["guarded-by"])
    expect_clean("good_allowlist.cpp")
    expect_clean("good_clean.cpp")
    expect_clean("good_hot_alloc_unmarked.cpp")
    expect_clean("good_shard_state.cpp")
    expect_clean("good_mutable_global.cpp")
    expect_clean("good_rng_seed.cpp")
    expect_clean("good_runner_capture.cpp")
    expect_clean("good_guarded_by.cpp")

    # Per-line counts: bad_rand has four firing lines, bad_wall_clock three.
    code, out = run_lint(os.path.join(HERE, "bad_rand.cpp"))
    check("bad_rand.cpp: 4 findings", out.count("[nondet-random]") == 4, out)
    code, out = run_lint(os.path.join(HERE, "bad_wall_clock.cpp"))
    check("bad_wall_clock.cpp: 3 findings", out.count("[wall-clock]") == 3, out)
    check("bad_wall_clock.cpp: steady_clock line clean", ":10:" not in out, out)

    # hot-loop-alloc: exactly the two per-call constructions fire; the
    # argless declaration, the function signature, and the allow()ed
    # construction stay clean.
    code, out = run_lint(os.path.join(HERE, "bad_hot_alloc.cpp"))
    check("bad_hot_alloc.cpp: 2 findings", out.count("[hot-loop-alloc]") == 2, out)

    # shard-state: exactly the five bypassing mutations fire; the
    # fixture's untracked binding line itself stays clean (binding a
    # reference is not a mutation).
    code, out = run_lint(os.path.join(HERE, "bad_shard_state.cpp"))
    check("bad_shard_state.cpp: 5 findings", out.count("[shard-state]") == 5, out)
    # And without the marker the same mutations are no finding: the rule
    # is opt-in per file, like hot-loop-alloc.
    with tempfile.TemporaryDirectory() as td:
        unmarked = os.path.join(td, "unmarked_shard_state.cpp")
        with open(os.path.join(HERE, "bad_shard_state.cpp"), encoding="utf-8") as fh:
            body = fh.read().splitlines(keepends=True)[1:]  # drop the marker
        with open(unmarked, "w", encoding="utf-8") as fh:
            fh.writelines(body)
        code, out = run_lint(unmarked)
        check("shard-state: unmarked file clean", code == 0, out)

    # Multi-pass rules: exact per-line counts on the golden pairs. The
    # bad files also pin which kinds of line fire (namespace scope,
    # static, thread_local, function-local static for mutable-global;
    # slot writes staying clean for runner-capture; the after-unlock
    # write staying clean for guarded-by).
    code, out = run_lint(os.path.join(HERE, "bad_mutable_global.cpp"))
    check("bad_mutable_global.cpp: 5 findings", out.count("[mutable-global]") == 5, out)
    code, out = run_lint(os.path.join(HERE, "bad_rng_seed.cpp"))
    check("bad_rng_seed.cpp: 3 findings", out.count("[rng-seed]") == 3, out)
    code, out = run_lint(os.path.join(HERE, "bad_runner_capture.cpp"))
    check("bad_runner_capture.cpp: 3 findings", out.count("[runner-capture]") == 3, out)
    check("bad_runner_capture.cpp: slot write clean", ":22:" not in out, out)
    code, out = run_lint(os.path.join(HERE, "bad_guarded_by.cpp"))
    check("bad_guarded_by.cpp: 3 findings", out.count("[guarded-by]") == 3, out)
    check("bad_guarded_by.cpp: post-unlock write clean", ":18:" not in out, out)

    # The four new rules appear in the catalogue.
    code, out = run_lint("--list-rules")
    for rule in ("mutable-global", "rng-seed", "runner-capture", "guarded-by"):
        check(f"--list-rules mentions {rule}", f"{rule}:" in out, out)

    # --json: machine-readable report with per-rule counts.
    with tempfile.TemporaryDirectory() as td:
        report = os.path.join(td, "findings.json")
        code, out = run_lint(os.path.join(HERE, "bad_guarded_by.cpp"), "--json", report)
        try:
            with open(report, encoding="utf-8") as fh:
                doc = json.load(fh)
            ok = (
                doc["finding_count"] == 3
                and doc["findings_by_rule"] == {"guarded-by": 3}
                and len(doc["findings"]) == 3
                and all(f["suggestion"] for f in doc["findings"])
            )
        except (OSError, KeyError, ValueError) as e:
            ok, doc = False, str(e)
        check("--json report structure", ok, str(doc))

    # --fix-suggestions: each finding gets a concrete fix line.
    code, out = run_lint(os.path.join(HERE, "bad_guarded_by.cpp"), "--fix-suggestions")
    check("--fix-suggestions prints fixes",
          out.count("fix:") == 3 and "GUARDED_BY" in out, out)

    # --audit-suppressions: lists markers with rationales, flags bare
    # ones, and always exits 0 even though markers exist.
    with tempfile.TemporaryDirectory() as td:
        audited = os.path.join(td, "audited.cpp")
        with open(audited, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <cstdlib>\n"
                "int f() {\n"
                "  int a = rand();  // spider-lint: allow(nondet-random) documented why\n"
                "  int b = rand();  // spider-lint: allow(nondet-random)\n"
                "  return a + b;\n"
                "}\n"
            )
        code, out = run_lint("--audit-suppressions", audited)
        check(
            "--audit-suppressions inventory",
            code == 0
            and "documented why" in out
            and out.count("NO RATIONALE") == 1
            and "2 suppression(s), 1 without a rationale" in out,
            out,
        )

    # --index-cache: a warm second run reuses the cached symbol index
    # (the cache file must exist, be valid JSON, and the two runs must
    # produce identical findings).
    with tempfile.TemporaryDirectory() as td:
        cache = os.path.join(td, "index.json")
        target = os.path.join(HERE, "bad_guarded_by.cpp")
        code1, out1 = run_lint(target, "--index-cache", cache)
        try:
            with open(cache, encoding="utf-8") as fh:
                cached = json.load(fh)
            ok = any("count_" not in e.get("guarded", []) for e in cached.values())
        except (OSError, ValueError) as e:
            ok, cached = False, str(e)
        code2, out2 = run_lint(target, "--index-cache", cache)
        check(
            "--index-cache warm run identical",
            ok and code1 == code2 == 1 and out1 == out2,
            out2,
        )
        good = os.path.join(HERE, "good_guarded_by.cpp")
        code3, _ = run_lint(good, "--index-cache", cache)
        check("--index-cache across file sets", code3 == 0, "")

    # Self-lint: the linter and this harness must at least be valid
    # Python (CI runs them under whatever python3 the image ships).
    proc = subprocess.run(
        [sys.executable, "-m", "py_compile", LINT, os.path.abspath(__file__)],
        capture_output=True,
        text=True,
        check=False,
    )
    check("tools/lint self-compiles", proc.returncode == 0, proc.stderr)

    # The seeded generator is the sanctioned home for fault randomness:
    # the same engine+fault-type combination must NOT fire under
    # src/faults/ itself.
    code, out = run_lint(os.path.join(REPO, "src", "faults", "fault_profile.cpp"))
    check("src/faults/ exempt from fault-sampling", code == 0, out)

    # A marker for the wrong rule must NOT suppress the finding.
    with tempfile.TemporaryDirectory() as td:
        wrong = os.path.join(td, "wrong_marker.cpp")
        with open(wrong, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <cstdlib>\n"
                "int f() {\n"
                "  return rand();  // spider-lint: allow(wall-clock)\n"
                "}\n"
            )
        code, out = run_lint(wrong)
        check("wrong-rule marker does not suppress", code == 1 and "[nondet-random]" in out, out)

        # Marker on the preceding comment line suppresses.
        above = os.path.join(td, "marker_above.cpp")
        with open(above, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <cstdlib>\n"
                "int f() {\n"
                "  // spider-lint: allow(nondet-random) fixture\n"
                "  return rand();\n"
                "}\n"
            )
        code, out = run_lint(above)
        check("marker on line above suppresses", code == 0, out)

    # The real tree must be clean -- the exact invocation CI uses.
    code, out = run_lint(
        os.path.join(REPO, "src"),
        os.path.join(REPO, "bench"),
        os.path.join(REPO, "examples"),
    )
    check("repo src/ bench/ examples/ clean", code == 0, out)

    if failures:
        print(f"\n{len(failures)} golden test(s) failed", file=sys.stderr)
        return 1
    print("\nall lint golden tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
