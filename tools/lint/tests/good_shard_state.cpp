// spider-lint: shard-state-file
// Fixture: every router/channel mutation goes through the owning-shard
// accessors -- inline, via a bound reference, or wrapped across lines.
// The shard-state rule must stay silent.

#include <cstddef>

namespace spider::sim {

struct Router {
  void push_local(int) {}
  void pop_local() {}
  void drop_expired(double) {}
  void configure_marking(double) {}
};
struct Channel {
  void offer_htlc(int, int) {}
  void settle_htlc(int) {}
};

struct GoodShardState {
  void mutate_via_accessors(std::size_t v) {
    owned_router(v).push_local(7);
    owned_router(v).drop_expired(1.5);
    owned_channel(3).offer_htlc(3, 10);
    Router& router = owned_router(v);  // sanctioned binding...
    router.pop_local();                // ...mutations through it are fine
    auto& ch = owned_channel(4);
    ch.settle_htlc(9);
    owned_router(v)  // wrapped call: accessor on the line above
        .configure_marking(0.3);
    const int depth = queue_depth(v);  // reads never need the accessor
    (void)depth;
  }

  Router& owned_router(std::size_t) { return router_; }
  Channel& owned_channel(std::size_t) { return channel_; }
  int queue_depth(std::size_t) { return 0; }
  Router router_;
  Channel channel_;
};

}  // namespace spider::sim
