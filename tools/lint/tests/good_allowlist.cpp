// Golden good snippet: every banned pattern here carries an allowlist
// marker (same line or the line above), so the file must lint clean.
#include <cstdlib>
#include <unordered_map>

// spider-lint: allow(unordered-container, mutable-global) lookup-only registry, never iterated
std::unordered_map<int, int> registry;

int lookup(int k) {
  int r = rand();  // spider-lint: allow(nondet-random) golden-test fixture
  auto it = registry.find(k);
  return it == registry.end() ? r : it->second;
}
