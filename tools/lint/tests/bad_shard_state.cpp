// spider-lint: shard-state-file
// Fixture: router/channel mutations that bypass the owning-shard
// accessors in a shard-state file. Under the PDES engine these writes
// could land in a foreign shard's execution slice; every mutator line
// below must fire [shard-state].

#include <cstddef>
#include <vector>

namespace spider::sim {

struct BadShardState {
  void mutate_directly(std::size_t v) {
    routers_[v].push_local(7);                 // fires: raw slab access
    routers_[v].drop_expired(1.5);             // fires
    net_->offer_htlc(3, 10);                   // fires: channel mutation
    auto& r = routers_[v];                     // binding skips the accessor
    r.pop_local();                             // fires: r is not owned-bound
    this->routers_[0].configure_marking(0.3);  // fires
  }

  struct FakeNet {
    void offer_htlc(int, int) {}
  };
  std::vector<int> routers_;
  FakeNet* net_ = nullptr;
};

}  // namespace spider::sim
