// Golden good snippet: deterministic idioms only -- sorted containers,
// seeded engines, steady_clock, double accumulation. Must lint clean,
// including the mentions of rand() and std::unordered_map in comments
// and strings ("std::random_device is banned").
#include <chrono>
#include <map>
#include <random>
#include <vector>

const char* kBannedNote = "std::random_device is banned; so is rand()";

double simulate(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::map<int, double> totals;
  std::vector<double> samples;
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) samples.push_back(uni(rng));
  double sum = 0.0;
  for (const double s : samples) sum += s;
  totals[0] = sum;
  (void)t0;
  (void)kBannedNote;
  return totals[0];
}
