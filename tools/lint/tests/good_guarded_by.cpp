// Golden good snippet: every lock-scope write lands on a field the
// symbol index knows is GUARDED_BY, and unlocked writes to unannotated
// fields are out of scope. Must lint clean. GUARDED_BY comes from
// core/thread_annotations.hpp in real code; the linter matches the
// annotation textually, so the macro shape is what matters here.
#include <mutex>

#define GUARDED_BY(x) __attribute__((guarded_by(x)))

class Stats {
 public:
  void bump() {
    std::lock_guard<std::mutex> lk(mu_);
    ++count_;
    total_ += 1;
  }
  void set_epoch(int e) { epoch_ = e; }  // no lock held: rule silent

 private:
  std::mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
  int total_ GUARDED_BY(mu_) = 0;
  int epoch_ = 0;
};
