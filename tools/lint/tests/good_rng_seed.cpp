// Golden good snippet: every engine's seed flows from derive_seed or a
// config seed; member engines are seeded by their constructor; engine
// return types are functions, not constructions. Must lint clean.
#include <cstdint>
#include <random>

struct TrialCfg {
  std::uint64_t seed = 1;
};

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

// Engine-typed function declaration: not an engine construction.
std::mt19937 make_engine(int run_index);

class Hasher {
 public:
  explicit Hasher(std::uint64_t seed) : rng_(seed) {}

 private:
  std::mt19937_64 rng_;  // member: the constructor seeds it
};

double sample(const TrialCfg& cfg, std::uint64_t trial) {
  std::mt19937_64 rng(derive_seed(cfg.seed, trial));
  std::mt19937_64 direct(cfg.seed);
  std::mt19937 salted(0x9e3779b9ull ^ cfg.seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  return u(rng) + u(direct) + u(salted);
}

// spider-lint: allow(rng-seed) shape-only microbench stream, value never reported
std::mt19937_64 fixed_stream() { return std::mt19937_64(99); }
