// Golden fixture: ad-hoc fault sampling outside src/faults/. The file
// names a fault type and rolls its own engine/distribution -- fault
// schedules must come from faults::generate_plan instead.
#include <random>

#include "faults/fault_plan.hpp"

spider::faults::FaultPlan improvise_faults(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(0.1);
  spider::faults::FaultPlan plan;
  plan.add({gap(rng), spider::faults::FaultKind::kNodeDown, 0, 1.0});
  return plan;
}
