// Golden bad snippet: lambdas handed to Runner::map / for_each that
// mutate a by-reference capture without indexing by the chunk
// parameter. Three writes fire [runner-capture]; the slot write
// `out[i] = ...` stays clean.
#include <cstddef>
#include <vector>

namespace exp {
class Runner {
 public:
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) const;
};
}  // namespace exp

void sweep() {
  exp::Runner runner;
  std::vector<double> out(8);
  double total = 0.0;
  std::size_t done = 0;
  runner.for_each(8, [&](std::size_t i) {
    out[i] = static_cast<double>(i);  // slot write: clean
    total += out[i];                  // fires: chunks race on total
    ++done;                           // fires: chunks race on done
  });
  runner.for_each(8, [&total](std::size_t i) {
    total = static_cast<double>(i);  // fires: explicit &-capture write
  });
}
