// Golden bad snippet: mutable namespace-scope / static / thread_local
// state. Every marked line must fire [mutable-global] -- shared mutable
// state outside the annotated pool is the core PDES hazard.
#include <cstdint>
#include <vector>

int g_trial_counter = 0;                     // fires: namespace scope
std::vector<int> g_registry;                 // fires: namespace scope
static double cache_hit_rate = 0.0;          // fires: static storage
thread_local std::uint64_t tls_scratch = 0;  // fires: thread_local

int bump() {
  static int calls = 0;  // fires: function-local static is still shared
  return ++calls;
}
