// Golden bad snippet: wall-clock reads in simulation code. Expected
// findings: wall-clock on each marked line; steady_clock is allowed.
#include <chrono>
#include <ctime>

double stamp() {
  auto sys = std::chrono::system_clock::now();            // fires
  auto hr = std::chrono::high_resolution_clock::now();    // fires
  std::time_t t = time(nullptr);                          // fires
  auto ok = std::chrono::steady_clock::now();             // clean
  (void)sys;
  (void)hr;
  (void)ok;
  return static_cast<double>(t);
}
