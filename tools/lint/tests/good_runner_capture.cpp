// Golden good snippet: chunk-pure Runner lambdas -- reads of shared
// immutable state, lambda-local scratch, and writes only through the
// chunk's own slot. Must lint clean.
#include <cstddef>
#include <vector>

namespace exp {
class Runner {
 public:
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) const;
};
}  // namespace exp

struct Trial {
  double value = 0.0;
};

double run_trial(const Trial& t);

void sweep(const exp::Runner& runner, const std::vector<Trial>& trials) {
  std::vector<double> out(trials.size());
  runner.for_each(trials.size(), [&](std::size_t i) {
    double local = run_trial(trials[i]);  // lambda-local scratch
    std::vector<double> scratch;
    scratch.push_back(local);   // local container: clean
    out[i] = local + scratch[0];  // slot write indexed by i: clean
  });
  // Mutation outside any Runner lambda is out of this rule's scope.
  double serial = 0.0;
  for (const Trial& t : trials) serial += t.value;
  out[0] += serial;
}
