// Golden bad snippet: RNG engines whose seed does not flow from
// derive_seed or a config seed. Three engine constructions fire
// [rng-seed]; the distribution is exempt (engines carry the stream).
#include <random>

double sample() {
  std::mt19937_64 a;          // fires: default-constructed engine
  std::mt19937 b(12345);      // fires: bare literal seed
  std::mt19937_64 c(42 + 1);  // fires: literal expression
  std::uniform_real_distribution<double> u(0.0, 1.0);
  return u(a) + u(b) + u(c);
}
