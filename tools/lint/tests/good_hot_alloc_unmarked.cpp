// Golden fixture: the identical construction in a file WITHOUT the
// hot-path-file marker is clean -- the rule is strictly opt-in.
#include <vector>

int query(std::size_t n) {
  std::vector<char> seen(n, 0);
  std::vector<int> dist(n);
  return static_cast<int>(seen.size() + dist.size());
}
