// Golden good snippet: immutable statics, function declarations whose
// shapes look superficially like variables, and one documented
// allowlist escape. Must lint clean.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

constexpr double kAlpha = 0.5;
const char* const kName = "spider";
static constexpr std::uint64_t kMask = 0xffull;
inline constexpr int kTableSize = 64;

// Wrapped signatures with defaulted parameters: the continuation lines
// must never read as namespace-scope variables.
std::vector<double> throughput(const std::vector<double>& caps,
                               double delta = 1.0,
                               std::size_t max_paths = 1000);

// `static` + parameter-shaped argument list = function, not state.
static std::size_t bucket_count(double min_value, double max_value);

struct Config {
  double end_time = 60.0;  // class member with default: not a global
  static int parse(const std::string& text);  // static member function
};

// spider-lint: allow(mutable-global) append-only interning arena; see DESIGN.md §11
static std::vector<std::string> g_interned;
